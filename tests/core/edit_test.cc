// Unit tests for dynamic edits (paper §4.3, Fig 6): in-place task migration between
// workers without renumbering the command tables.

#include <gtest/gtest.h>

#include "src/core/template_manager.h"

namespace nimbus::core {
namespace {

constexpr FunctionId kMap{0};
constexpr FunctionId kReduce{1};

ObjectBytesFn Bytes() {
  return [](LogicalObjectId) -> std::int64_t { return 128; };
}

// An LR-shaped block on 2 workers, 4 partitions:
//   map q: reads {tdata_q (block input), coeff (block input)} writes grad_q, placement q
//   reduce: reads {grad_0..grad_3, coeff}, writes coeff, placement 0.
struct Fixture {
  TemplateManager manager;
  TemplateId tid;
  WorkerTemplateSet* set = nullptr;

  LogicalObjectId tdata(int q) const {
    return LogicalObjectId(10 + static_cast<std::uint64_t>(q));
  }
  LogicalObjectId grad(int q) const {
    return LogicalObjectId(20 + static_cast<std::uint64_t>(q));
  }
  LogicalObjectId coeff() const { return LogicalObjectId(1); }

  Fixture() {
    tid = manager.BeginCapture("lr");
    for (int q = 0; q < 4; ++q) {
      manager.CaptureTask(kMap, {tdata(q), coeff()}, {grad(q)}, q, 0, false, {});
    }
    manager.CaptureTask(kReduce, {grad(0), grad(1), grad(2), grad(3), coeff()}, {coeff()},
                        0, 0, true, {});
    manager.FinishCapture();
    set = manager.GetOrProject(
        tid, Assignment::RoundRobin(4, {WorkerId(0), WorkerId(1)}), Bytes());
  }
};

TEST(EditTest, MigrationMovesTaskAndKeepsSlotIndex) {
  Fixture f;
  // Task 1 (map of partition 1) lives on worker 1; move it to worker 0.
  const std::int32_t old_local = f.set->entry_meta()[1].local_index;
  ASSERT_EQ(f.set->entry_meta()[1].worker, WorkerId(1));

  EditPlan plan = f.manager.PlanMigration(f.set, 1, WorkerId(0));
  EXPECT_EQ(plan.tasks_touched, 2);  // one remove + one add

  // Old slot on worker 1 becomes a copy-receive with the SAME index (Fig 6).
  const WtEntry& slot =
      f.set->HalfFor(WorkerId(1))->entries[static_cast<std::size_t>(old_local)];
  EXPECT_EQ(slot.type, CommandType::kCopyReceive);
  EXPECT_EQ(slot.object, f.grad(1));
  EXPECT_EQ(slot.peer, WorkerId(0));

  // The task now lives on worker 0, paired with a send back to worker 1.
  EXPECT_EQ(f.set->entry_meta()[1].worker, WorkerId(0));
  const WtEntry& moved =
      f.set->HalfFor(WorkerId(0))
          ->entries[static_cast<std::size_t>(f.set->entry_meta()[1].local_index)];
  EXPECT_EQ(moved.type, CommandType::kTask);
  EXPECT_EQ(moved.function, kMap);

  bool send_back = false;
  for (const WtEntry& e : f.set->HalfFor(WorkerId(0))->entries) {
    if (e.type == CommandType::kCopySend && e.object == f.grad(1) && e.peer == WorkerId(1)) {
      send_back = true;
    }
  }
  EXPECT_TRUE(send_back);
}

TEST(EditTest, MigrationMovesPreconditions) {
  Fixture f;
  const Precondition old_pre{f.tdata(1), WorkerId(1)};
  ASSERT_TRUE(f.set->preconditions().count(old_pre) > 0);

  f.manager.PlanMigration(f.set, 1, WorkerId(0));

  EXPECT_EQ(f.set->preconditions().count(old_pre), 0u)
      << "tdata precondition should move off the old worker";
  EXPECT_GT(f.set->preconditions().count(Precondition{f.tdata(1), WorkerId(0)}), 0u);
  // coeff is still read by the other map task on worker 1, so its precondition remains.
  EXPECT_GT(f.set->preconditions().count(Precondition{f.coeff(), WorkerId(1)}), 0u);
}

TEST(EditTest, MigrationRestoresSelfValidationForRewrittenInputs) {
  Fixture f;
  // coeff is a block input rewritten in-block by the reduce task (on worker 0). After
  // migrating a map task to a new worker, the end-of-block coeff broadcast must cover it.
  EditPlan plan = f.manager.PlanMigration(f.set, 1, WorkerId(0));
  (void)plan;
  for (const WriteDelta& delta : f.set->write_deltas()) {
    if (delta.object == f.coeff()) {
      // Worker 0 writes coeff and worker 1 still reads it: both must be final holders.
      EXPECT_GE(delta.final_holders.size(), 2u);
    }
  }
}

TEST(EditTest, WorkerOpsReplayIdenticallyOnACachedHalf) {
  // The controller mutates its cached halves in place; the ops shipped to the worker must
  // produce byte-identical tables.
  Fixture f;
  // Snapshot the worker halves as a worker would have cached them at install time.
  std::vector<WorkerHalf> worker_side;
  for (const WorkerHalf& h : f.set->halves()) {
    worker_side.push_back(h);
  }

  EditPlan plan = f.manager.PlanMigration(f.set, 1, WorkerId(0));
  for (auto& [worker_id, ops] : plan.per_worker) {
    for (WorkerHalf& h : worker_side) {
      if (h.worker == worker_id) {
        ApplyWorkerEditOps(&h, ops);
      }
    }
  }

  for (const WorkerHalf& controller_half : f.set->halves()) {
    const WorkerHalf* replayed = nullptr;
    for (const WorkerHalf& h : worker_side) {
      if (h.worker == controller_half.worker) {
        replayed = &h;
      }
    }
    ASSERT_NE(replayed, nullptr);
    ASSERT_EQ(replayed->entries.size(), controller_half.entries.size());
    for (std::size_t i = 0; i < replayed->entries.size(); ++i) {
      const WtEntry& a = replayed->entries[i];
      const WtEntry& b = controller_half.entries[i];
      EXPECT_EQ(a.type, b.type) << "entry " << i;
      EXPECT_EQ(a.copy_index, b.copy_index) << "entry " << i;
      EXPECT_EQ(a.peer, b.peer) << "entry " << i;
      EXPECT_EQ(a.object, b.object) << "entry " << i;
      EXPECT_EQ(a.before, b.before) << "entry " << i;
    }
  }
}

TEST(EditTest, MigrationToSameWorkerIsANoop) {
  Fixture f;
  const WorkerId current = f.set->entry_meta()[0].worker;
  EditPlan plan = f.manager.PlanMigration(f.set, 0, current);
  EXPECT_EQ(plan.tasks_touched, 0);
  EXPECT_TRUE(plan.per_worker.empty());
}

TEST(EditTest, ChainedMigrationsStayConsistent) {
  Fixture f;
  f.manager.PlanMigration(f.set, 1, WorkerId(0));
  f.manager.PlanMigration(f.set, 3, WorkerId(0));
  // Move one back again.
  f.manager.PlanMigration(f.set, 1, WorkerId(1));
  EXPECT_EQ(f.set->entry_meta()[1].worker, WorkerId(1));
  EXPECT_EQ(f.set->entry_meta()[3].worker, WorkerId(0));
  // Indices remain in bounds and the tables contain no dangling before edges.
  for (const WorkerHalf& h : f.set->halves()) {
    for (const WtEntry& e : h.entries) {
      for (std::int32_t b : e.before) {
        ASSERT_GE(b, 0);
        ASSERT_LT(static_cast<std::size_t>(b), h.entries.size());
      }
    }
  }
}

TEST(EditTest, MigrationOfInBlockConsumerInsertsForwardCopy) {
  Fixture f;
  // Migrate the reduce task (entry 4, reads in-block grads) from worker 0 to worker 1.
  // grads 0 and 2 are produced on worker 0, so the plan must add copies 0 -> 1.
  EditPlan plan = f.manager.PlanMigration(f.set, 4, WorkerId(1));
  EXPECT_EQ(f.set->entry_meta()[4].worker, WorkerId(1));

  int forward_copies = 0;
  for (const WtEntry& e : f.set->HalfFor(WorkerId(0))->entries) {
    if (e.type == CommandType::kCopySend && e.peer == WorkerId(1) &&
        (e.object == f.grad(0) || e.object == f.grad(2))) {
      ++forward_copies;
    }
  }
  EXPECT_EQ(forward_copies, 2);
  EXPECT_EQ(plan.tasks_touched, 2);
}

}  // namespace
}  // namespace nimbus::core
