// Unit tests for validation, patching and the patch cache (paper §2.4, §4.2).

#include <gtest/gtest.h>

#include "src/core/patch.h"
#include "src/core/template_manager.h"

namespace nimbus::core {
namespace {

constexpr FunctionId kFn{0};

ObjectBytesFn Bytes() {
  return [](LogicalObjectId) -> std::int64_t { return 64; };
}

struct Fixture {
  TemplateManager manager;
  TemplateId tid;
  WorkerTemplateSet* set = nullptr;
  VersionMap versions;

  // Block: workers 0 and 1 each read broadcast object 100 and write their own output.
  Fixture() {
    tid = manager.BeginCapture("b");
    manager.CaptureTask(kFn, {LogicalObjectId(100)}, {LogicalObjectId(0)}, 0, 0, false, {});
    manager.CaptureTask(kFn, {LogicalObjectId(100)}, {LogicalObjectId(1)}, 1, 0, false, {});
    manager.FinishCapture();
    set = manager.GetOrProject(
        tid, Assignment::RoundRobin(2, {WorkerId(0), WorkerId(1)}), Bytes());
    versions.CreateObject(LogicalObjectId(100), WorkerId(0));
    versions.CreateObject(LogicalObjectId(0), WorkerId(0));
    versions.CreateObject(LogicalObjectId(1), WorkerId(1));
  }
};

TEST(PatchTest, ValidationFindsMissingReplicas) {
  Fixture f;
  // Object 100 lives only on worker 0; worker 1's precondition fails.
  const auto needed = f.manager.Validate(*f.set, f.versions);
  ASSERT_EQ(needed.size(), 1u);
  EXPECT_EQ(needed[0].object, LogicalObjectId(100));
  EXPECT_EQ(needed[0].src, WorkerId(0));
  EXPECT_EQ(needed[0].dst, WorkerId(1));
}

TEST(PatchTest, ValidationPassesWhenReplicated) {
  Fixture f;
  f.versions.RecordCopyToLatest(LogicalObjectId(100), WorkerId(1));
  EXPECT_TRUE(f.manager.Validate(*f.set, f.versions).empty());
}

TEST(PatchTest, ResolveCachesAndHits) {
  Fixture f;
  bool hit = true;
  Patch p1 = f.manager.ResolvePatch(*f.set, 7, f.versions, &hit);
  EXPECT_FALSE(hit);
  EXPECT_EQ(p1.size(), 1u);
  // Same preceding control flow, same system state: cache hit.
  Patch p2 = f.manager.ResolvePatch(*f.set, 7, f.versions, &hit);
  EXPECT_TRUE(hit);
  EXPECT_EQ(p2.size(), 1u);
  EXPECT_EQ(f.manager.patch_cache().hits(), 1u);
  EXPECT_EQ(f.manager.patch_cache().misses(), 1u);
}

TEST(PatchTest, DifferentPredecessorIsDifferentCacheEntry) {
  Fixture f;
  bool hit = true;
  f.manager.ResolvePatch(*f.set, 7, f.versions, &hit);
  EXPECT_FALSE(hit);
  f.manager.ResolvePatch(*f.set, 8, f.versions, &hit);
  EXPECT_FALSE(hit);  // entered from different control flow
  EXPECT_EQ(f.manager.patch_cache().size(), 2u);
}

TEST(PatchTest, StaleCachedPatchIsRecomputed) {
  Fixture f;
  bool hit = true;
  f.manager.ResolvePatch(*f.set, 7, f.versions, &hit);
  EXPECT_FALSE(hit);
  // The source moves: object 100's latest is now on worker 2 only.
  f.versions.RecordWrite(LogicalObjectId(100), WorkerId(2));
  Patch p = f.manager.ResolvePatch(*f.set, 7, f.versions, &hit);
  EXPECT_FALSE(hit) << "cached patch has a stale source and must be recomputed";
  // Both workers now need the object (worker 0 lost latest too).
  EXPECT_EQ(p.size(), 2u);
  for (const PatchDirective& d : p.directives) {
    EXPECT_EQ(d.src, WorkerId(2));
  }
}

TEST(PatchTest, WorkerChurnInvalidatesCachedPatchByEpoch) {
  Fixture f;
  bool hit = true;
  f.manager.ResolvePatch(*f.set, 7, f.versions, &hit);
  EXPECT_FALSE(hit);
  // Churn that does not disturb this patch's source: another worker's instance vanishes.
  // The epoch key refuses the entry outright (no source re-validation is attempted).
  f.versions.DropInstance(LogicalObjectId(0), WorkerId(0));
  Patch p = f.manager.ResolvePatch(*f.set, 7, f.versions, &hit);
  EXPECT_FALSE(hit) << "a churn-epoch mismatch must read as a miss";
  EXPECT_EQ(p.size(), 1u);
  // The entry was re-stored under the current epoch: steady state hits again.
  f.manager.ResolvePatch(*f.set, 7, f.versions, &hit);
  EXPECT_TRUE(hit);
}

TEST(PatchTest, SetEditInvalidatesCachedPatchByGeneration) {
  Fixture f;
  bool hit = true;
  f.manager.ResolvePatch(*f.set, 7, f.versions, &hit);
  EXPECT_FALSE(hit);
  // Any edit that can change preconditions bumps the set generation and voids the entry.
  f.set->AddPrecondition(LogicalObjectId(100), WorkerId(0));
  f.manager.ResolvePatch(*f.set, 7, f.versions, &hit);
  EXPECT_FALSE(hit) << "a set-generation mismatch must read as a miss";
}

TEST(PatchTest, CacheCapsAndEvicts) {
  Fixture f;
  auto& cache = f.manager.mutable_patch_cache();
  cache.SetCapacity(4);
  bool hit = false;
  // Distinct predecessors create distinct entries; the cap bounds the table.
  for (std::uint64_t prev = 0; prev < 10; ++prev) {
    f.manager.ResolvePatch(*f.set, prev, f.versions, &hit);
  }
  EXPECT_LE(cache.size(), 4u);
  EXPECT_EQ(cache.counters().evictions, 6u);
  EXPECT_EQ(cache.counters().misses, 10u);
  // The most recently used entry survived.
  f.manager.ResolvePatch(*f.set, 9, f.versions, &hit);
  EXPECT_TRUE(hit);
}

TEST(PatchTest, PatchStillCorrectRules) {
  VersionMap versions;
  versions.CreateObject(LogicalObjectId(1), WorkerId(0));

  Patch cached;
  cached.directives.push_back({LogicalObjectId(1), WorkerId(0), WorkerId(1), 64});
  std::vector<PatchDirective> required = cached.directives;

  EXPECT_TRUE(PatchStillCorrect(cached, required, versions));

  // Different size.
  std::vector<PatchDirective> more = required;
  more.push_back({LogicalObjectId(1), WorkerId(0), WorkerId(2), 64});
  EXPECT_FALSE(PatchStillCorrect(cached, more, versions));

  // Source no longer holds latest.
  versions.RecordWrite(LogicalObjectId(1), WorkerId(3));
  EXPECT_FALSE(PatchStillCorrect(cached, required, versions));
}

TEST(PatchTest, ApplyInstantiationEffectsAdvancesVersions) {
  Fixture f;
  Patch patch;
  patch.directives.push_back({LogicalObjectId(100), WorkerId(0), WorkerId(1), 64});
  f.manager.ApplyInstantiationEffects(*f.set, patch, &f.versions);
  // Patch effect: worker 1 now has the broadcast object.
  EXPECT_TRUE(f.versions.WorkerHasLatest(LogicalObjectId(100), WorkerId(1)));
  // Write deltas: both outputs advanced one version on their writers.
  EXPECT_EQ(f.versions.latest(LogicalObjectId(0)), 1u);
  EXPECT_EQ(f.versions.latest(LogicalObjectId(1)), 1u);
  EXPECT_TRUE(f.versions.WorkerHasLatest(LogicalObjectId(0), WorkerId(0)));
  EXPECT_TRUE(f.versions.WorkerHasLatest(LogicalObjectId(1), WorkerId(1)));
}

TEST(PatchTest, RepeatedInstantiationKeepsValidating) {
  // After applying effects, a self-validating template must validate cleanly against the
  // updated version map (the auto-validation invariant).
  Fixture f;
  f.versions.RecordCopyToLatest(LogicalObjectId(100), WorkerId(1));
  ASSERT_TRUE(f.manager.Validate(*f.set, f.versions).empty());
  for (int i = 0; i < 5; ++i) {
    Patch none;
    f.manager.ApplyInstantiationEffects(*f.set, none, &f.versions);
    EXPECT_TRUE(f.manager.Validate(*f.set, f.versions).empty()) << "iteration " << i;
  }
}

}  // namespace
}  // namespace nimbus::core
