// Regression tests for the dense-id projection rewrite: projecting the same block onto the
// same assignment must produce byte-identical worker-template sets, no matter which
// TemplateManager instance does it or how many projections ran before. The seed
// implementation iterated unordered_maps while emitting self-validation copies and write
// deltas, so its output depended on hash-table layout; the flat-array builder is ordered by
// construction, and these tests pin that down.

#include <gtest/gtest.h>

#include <vector>

#include "src/core/template_manager.h"
#include "src/core/worker_template.h"

namespace nimbus::core {
namespace {

constexpr int kPartitions = 12;
constexpr int kWorkers = 4;

ObjectBytesFn Bytes() {
  return [](LogicalObjectId o) -> std::int64_t {
    return 64 + static_cast<std::int64_t>(o.value());
  };
}

// An LR-shaped block: per-partition map tasks reading a broadcast object, one reduce per
// worker, one update rewriting the broadcast object (exercises copies, preconditions, and
// the self-validation pass).
TemplateId CaptureBlock(TemplateManager* manager) {
  const LogicalObjectId coeff(1000);
  const TemplateId id = manager->BeginCapture("determinism");
  for (int q = 0; q < kPartitions; ++q) {
    manager->CaptureTask(FunctionId(0),
                         {LogicalObjectId(static_cast<std::uint64_t>(q)), coeff},
                         {LogicalObjectId(100 + static_cast<std::uint64_t>(q))}, q,
                         sim::Millis(1), false, {});
  }
  for (int g = 0; g < kWorkers; ++g) {
    std::vector<LogicalObjectId> reads;
    for (int q = g; q < kPartitions; q += kWorkers) {
      reads.push_back(LogicalObjectId(100 + static_cast<std::uint64_t>(q)));
    }
    manager->CaptureTask(FunctionId(1), std::move(reads),
                         {LogicalObjectId(200 + static_cast<std::uint64_t>(g))}, g,
                         sim::Micros(50), false, {});
  }
  std::vector<LogicalObjectId> finals;
  for (int g = 0; g < kWorkers; ++g) {
    finals.push_back(LogicalObjectId(200 + static_cast<std::uint64_t>(g)));
  }
  manager->CaptureTask(FunctionId(2), std::move(finals), {coeff}, 0, sim::Micros(80), true,
                       {});
  manager->FinishCapture();
  return id;
}

Assignment TestAssignment() {
  std::vector<WorkerId> workers;
  for (int w = 0; w < kWorkers; ++w) {
    workers.push_back(WorkerId(static_cast<std::uint64_t>(w)));
  }
  return Assignment::RoundRobin(kPartitions, workers);
}

void ExpectEntriesEqual(const WtEntry& a, const WtEntry& b) {
  EXPECT_EQ(a.type, b.type);
  EXPECT_EQ(a.function, b.function);
  EXPECT_EQ(a.global_entry, b.global_entry);
  EXPECT_EQ(a.duration, b.duration);
  EXPECT_EQ(a.returns_scalar, b.returns_scalar);
  EXPECT_EQ(a.reads, b.reads);
  EXPECT_EQ(a.writes, b.writes);
  EXPECT_EQ(a.copy_index, b.copy_index);
  EXPECT_EQ(a.peer, b.peer);
  EXPECT_EQ(a.object, b.object);
  EXPECT_EQ(a.bytes, b.bytes);
  EXPECT_EQ(a.before, b.before);
  EXPECT_EQ(a.dead, b.dead);
}

void ExpectSetsIdentical(const WorkerTemplateSet& a, const WorkerTemplateSet& b) {
  ASSERT_EQ(a.halves().size(), b.halves().size());
  for (std::size_t h = 0; h < a.halves().size(); ++h) {
    const WorkerHalf& ha = a.halves()[h];
    const WorkerHalf& hb = b.halves()[h];
    EXPECT_EQ(ha.worker, hb.worker);
    ASSERT_EQ(ha.entries.size(), hb.entries.size()) << "half " << h;
    for (std::size_t e = 0; e < ha.entries.size(); ++e) {
      ExpectEntriesEqual(ha.entries[e], hb.entries[e]);
    }
  }

  ASSERT_EQ(a.preconditions().size(), b.preconditions().size());
  auto ita = a.preconditions().begin();
  auto itb = b.preconditions().begin();
  for (; ita != a.preconditions().end(); ++ita, ++itb) {
    EXPECT_EQ(ita->pre.object, itb->pre.object);
    EXPECT_EQ(ita->pre.worker, itb->pre.worker);
    EXPECT_EQ(ita->refcount, itb->refcount);
  }

  ASSERT_EQ(a.write_deltas().size(), b.write_deltas().size());
  for (std::size_t i = 0; i < a.write_deltas().size(); ++i) {
    EXPECT_EQ(a.write_deltas()[i].object, b.write_deltas()[i].object);
    EXPECT_EQ(a.write_deltas()[i].write_count, b.write_deltas()[i].write_count);
    EXPECT_EQ(a.write_deltas()[i].final_holders, b.write_deltas()[i].final_holders);
  }

  EXPECT_EQ(a.copy_count(), b.copy_count());
  EXPECT_EQ(a.self_validating(), b.self_validating());
}

TEST(ProjectionDeterminismTest, SameBlockSameAssignmentIsByteIdentical) {
  TemplateManager ma;
  TemplateManager mb;
  const TemplateId ta = CaptureBlock(&ma);
  const TemplateId tb = CaptureBlock(&mb);

  const WorkerTemplateSet set_a =
      ProjectBlock(*ma.Find(ta), TestAssignment(), WorkerTemplateId(0), Bytes());
  const WorkerTemplateSet set_b =
      ProjectBlock(*mb.Find(tb), TestAssignment(), WorkerTemplateId(0), Bytes());
  ExpectSetsIdentical(set_a, set_b);

  // A third projection from a manager that already projected once (warm interners and a
  // populated projection cache) must still match.
  const WorkerTemplateSet set_c =
      ProjectBlock(*ma.Find(ta), TestAssignment(), WorkerTemplateId(1), Bytes());
  ExpectSetsIdentical(set_a, set_c);
}

TEST(ProjectionDeterminismTest, PreconditionsAndDeltasAreSorted) {
  TemplateManager manager;
  const TemplateId id = CaptureBlock(&manager);
  const WorkerTemplateSet set =
      ProjectBlock(*manager.Find(id), TestAssignment(), WorkerTemplateId(0), Bytes());

  const Precondition* prev = nullptr;
  for (const auto& [pre, refcount] : set.preconditions()) {
    EXPECT_GT(refcount, 0);
    if (prev != nullptr) {
      const bool ordered =
          prev->object < pre.object ||
          (prev->object == pre.object && prev->worker < pre.worker);
      EXPECT_TRUE(ordered) << "preconditions out of (object, worker) order";
    }
    prev = &pre;
  }

  for (std::size_t i = 1; i < set.write_deltas().size(); ++i) {
    EXPECT_LT(set.write_deltas()[i - 1].object, set.write_deltas()[i].object);
  }
  for (const WriteDelta& delta : set.write_deltas()) {
    EXPECT_FALSE(delta.final_holders.empty());
  }
}

TEST(ProjectionDeterminismTest, ValidationIdenticalAcrossEquivalentProjections) {
  TemplateManager ma;
  TemplateManager mb;
  const TemplateId ta = CaptureBlock(&ma);
  const TemplateId tb = CaptureBlock(&mb);
  const WorkerTemplateSet set_a =
      ProjectBlock(*ma.Find(ta), TestAssignment(), WorkerTemplateId(0), Bytes());
  const WorkerTemplateSet set_b =
      ProjectBlock(*mb.Find(tb), TestAssignment(), WorkerTemplateId(0), Bytes());

  // An empty version map fails every created-object precondition the same way for both.
  VersionMap versions;
  versions.CreateObject(LogicalObjectId(1000), WorkerId(3));  // broadcast object elsewhere
  const auto needed_a = ma.Validate(set_a, versions);
  const auto needed_b = mb.Validate(set_b, versions);
  ASSERT_EQ(needed_a.size(), needed_b.size());
  for (std::size_t i = 0; i < needed_a.size(); ++i) {
    EXPECT_EQ(needed_a[i].object, needed_b[i].object);
    EXPECT_EQ(needed_a[i].src, needed_b[i].src);
    EXPECT_EQ(needed_a[i].dst, needed_b[i].dst);
    EXPECT_EQ(needed_a[i].bytes, needed_b[i].bytes);
  }
}

}  // namespace
}  // namespace nimbus::core
