// Unit tests for worker-template projection: the dependency analysis at the heart of the
// template machinery (paper §4.1-4.2).

#include <gtest/gtest.h>

#include "src/core/template_manager.h"
#include "src/core/worker_template.h"

namespace nimbus::core {
namespace {

constexpr FunctionId kFn{0};

ObjectBytesFn Bytes() {
  return [](LogicalObjectId) -> std::int64_t { return 100; };
}

// Builds a two-worker assignment: even partitions on worker 0, odd on worker 1.
Assignment TwoWorkers(int partitions) {
  return Assignment::RoundRobin(partitions, {WorkerId(0), WorkerId(1)});
}

const WtEntry& TaskEntryFor(const WorkerTemplateSet& set, std::int32_t global) {
  const EntryMeta& em = set.entry_meta()[static_cast<std::size_t>(global)];
  WorkerTemplateSet& mutable_set = const_cast<WorkerTemplateSet&>(set);
  return mutable_set.HalfFor(em.worker)->entries[static_cast<std::size_t>(em.local_index)];
}

int CountType(const WorkerTemplateSet& set, CommandType type) {
  int n = 0;
  for (const auto& half : set.halves()) {
    for (const auto& e : half.entries) {
      if (!e.dead && e.type == type) {
        ++n;
      }
    }
  }
  return n;
}

TEST(ProjectionTest, SameWorkerRawDependency) {
  ControllerTemplate block(TemplateId(0), "t");
  // task0 writes obj A on partition 0; task1 reads A on partition 0 (same worker).
  block.AppendEntry({kFn, {}, {LogicalObjectId(1)}, 0, 0, false, -1, {}});
  block.AppendEntry({kFn, {LogicalObjectId(1)}, {LogicalObjectId(2)}, 0, 0, false, -1, {}});
  block.MarkFinished();

  WorkerTemplateSet set = ProjectBlock(block, TwoWorkers(2), WorkerTemplateId(0), Bytes());
  EXPECT_EQ(CountType(set, CommandType::kCopySend), 0);
  const WtEntry& reader = TaskEntryFor(set, 1);
  ASSERT_EQ(reader.before.size(), 1u);
  EXPECT_EQ(reader.before[0], set.entry_meta()[0].local_index);
}

TEST(ProjectionTest, CrossWorkerReadInsertsCopyPair) {
  ControllerTemplate block(TemplateId(0), "t");
  // task0 writes A on partition 0 (worker 0); task1 reads A on partition 1 (worker 1).
  block.AppendEntry({kFn, {}, {LogicalObjectId(1)}, 0, 0, false, -1, {}});
  block.AppendEntry({kFn, {LogicalObjectId(1)}, {LogicalObjectId(2)}, 1, 0, false, -1, {}});
  block.MarkFinished();

  WorkerTemplateSet set = ProjectBlock(block, TwoWorkers(2), WorkerTemplateId(0), Bytes());
  EXPECT_EQ(CountType(set, CommandType::kCopySend), 1);
  EXPECT_EQ(CountType(set, CommandType::kCopyReceive), 1);
  // The reader is gated by the receive on its own worker, not by anything remote.
  const WtEntry& reader = TaskEntryFor(set, 1);
  ASSERT_EQ(reader.before.size(), 1u);
  WorkerTemplateSet& ms = set;
  const WtEntry& recv =
      ms.HalfFor(WorkerId(1))->entries[static_cast<std::size_t>(reader.before[0])];
  EXPECT_EQ(recv.type, CommandType::kCopyReceive);
  EXPECT_EQ(recv.object, LogicalObjectId(1));
  EXPECT_EQ(recv.peer, WorkerId(0));
}

TEST(ProjectionTest, RepeatedCrossWorkerReadReusesOneCopy) {
  ControllerTemplate block(TemplateId(0), "t");
  block.AppendEntry({kFn, {}, {LogicalObjectId(1)}, 0, 0, false, -1, {}});
  // Two readers on worker 1: only one copy should cross.
  block.AppendEntry({kFn, {LogicalObjectId(1)}, {LogicalObjectId(2)}, 1, 0, false, -1, {}});
  block.AppendEntry({kFn, {LogicalObjectId(1)}, {LogicalObjectId(3)}, 1, 0, false, -1, {}});
  block.MarkFinished();

  WorkerTemplateSet set = ProjectBlock(block, TwoWorkers(2), WorkerTemplateId(0), Bytes());
  EXPECT_EQ(CountType(set, CommandType::kCopySend), 1);
}

TEST(ProjectionTest, BlockInputBecomesPrecondition) {
  ControllerTemplate block(TemplateId(0), "t");
  block.AppendEntry({kFn, {LogicalObjectId(7)}, {LogicalObjectId(8)}, 1, 0, false, -1, {}});
  block.MarkFinished();

  WorkerTemplateSet set = ProjectBlock(block, TwoWorkers(2), WorkerTemplateId(0), Bytes());
  ASSERT_EQ(set.preconditions().size(), 1u);
  const auto& [pre, refcount] = *set.preconditions().begin();
  EXPECT_EQ(pre.object, LogicalObjectId(7));
  EXPECT_EQ(pre.worker, WorkerId(1));
  EXPECT_EQ(refcount, 1);
}

TEST(ProjectionTest, SelfValidationAppendsEndOfBlockCopy) {
  // The paper's Fig 5b example: a precondition object rewritten in-block by another worker
  // gets an end-of-block copy back, so the template validates after itself.
  ControllerTemplate block(TemplateId(0), "t");
  // Reader of X on worker 1 (precondition), then writer of X on worker 0.
  block.AppendEntry({kFn, {LogicalObjectId(1)}, {LogicalObjectId(2)}, 1, 0, false, -1, {}});
  block.AppendEntry({kFn, {}, {LogicalObjectId(1)}, 0, 0, false, -1, {}});
  block.MarkFinished();

  WorkerTemplateSet set = ProjectBlock(block, TwoWorkers(2), WorkerTemplateId(0), Bytes());
  EXPECT_TRUE(set.self_validating());
  // One end-of-block copy pair worker0 -> worker1 restores the precondition.
  EXPECT_EQ(CountType(set, CommandType::kCopySend), 1);
  EXPECT_EQ(CountType(set, CommandType::kCopyReceive), 1);
  // Final holders of X include both workers.
  ASSERT_EQ(set.write_deltas().size(), 2u);
  for (const WriteDelta& delta : set.write_deltas()) {
    if (delta.object == LogicalObjectId(1)) {
      EXPECT_EQ(delta.final_holders.size(), 2u);
    }
  }
}

TEST(ProjectionTest, WarOrderingOnSameWorker) {
  ControllerTemplate block(TemplateId(0), "t");
  // task0 reads X (precondition), task1 writes X on the same worker: WAR edge required.
  block.AppendEntry({kFn, {LogicalObjectId(1)}, {LogicalObjectId(2)}, 0, 0, false, -1, {}});
  block.AppendEntry({kFn, {}, {LogicalObjectId(1)}, 0, 0, false, -1, {}});
  block.MarkFinished();

  WorkerTemplateSet set = ProjectBlock(block, TwoWorkers(2), WorkerTemplateId(0), Bytes());
  const WtEntry& writer = TaskEntryFor(set, 1);
  ASSERT_EQ(writer.before.size(), 1u);
  EXPECT_EQ(writer.before[0], set.entry_meta()[0].local_index);
}

TEST(ProjectionTest, WawOrderingOnSameWorker) {
  ControllerTemplate block(TemplateId(0), "t");
  block.AppendEntry({kFn, {}, {LogicalObjectId(1)}, 0, 0, false, -1, {}});
  block.AppendEntry({kFn, {}, {LogicalObjectId(1)}, 0, 0, false, -1, {}});
  block.MarkFinished();

  WorkerTemplateSet set = ProjectBlock(block, TwoWorkers(2), WorkerTemplateId(0), Bytes());
  const WtEntry& second = TaskEntryFor(set, 1);
  ASSERT_EQ(second.before.size(), 1u);
  // Only two versions written; delta records both.
  ASSERT_EQ(set.write_deltas().size(), 1u);
  EXPECT_EQ(set.write_deltas()[0].write_count, 2u);
}

TEST(ProjectionTest, CopySendOrderedBeforeSubsequentOverwrite) {
  ControllerTemplate block(TemplateId(0), "t");
  // w0 writes X; w1 reads X (copy crosses); then w0 REwrites X. The send must be ordered
  // before the second write (cross-iteration anti-dependency).
  block.AppendEntry({kFn, {}, {LogicalObjectId(1)}, 0, 0, false, -1, {}});
  block.AppendEntry({kFn, {LogicalObjectId(1)}, {LogicalObjectId(2)}, 1, 0, false, -1, {}});
  block.AppendEntry({kFn, {}, {LogicalObjectId(1)}, 0, 0, false, -1, {}});
  block.MarkFinished();

  WorkerTemplateSet set = ProjectBlock(block, TwoWorkers(2), WorkerTemplateId(0), Bytes());
  const WtEntry& rewrite = TaskEntryFor(set, 2);
  // The rewrite waits for both the original write and the send reading it.
  bool waits_for_send = false;
  WorkerHalf* half0 = set.HalfFor(WorkerId(0));
  for (std::int32_t b : rewrite.before) {
    if (half0->entries[static_cast<std::size_t>(b)].type == CommandType::kCopySend) {
      waits_for_send = true;
    }
  }
  EXPECT_TRUE(waits_for_send);
}

TEST(ProjectionTest, WriteDeltasAreDeterministic) {
  ControllerTemplate block(TemplateId(0), "t");
  for (int i = 0; i < 10; ++i) {
    block.AppendEntry(
        {kFn, {}, {LogicalObjectId(static_cast<std::uint64_t>(i))}, i % 2, 0, false, -1, {}});
  }
  block.MarkFinished();
  WorkerTemplateSet a = ProjectBlock(block, TwoWorkers(2), WorkerTemplateId(0), Bytes());
  WorkerTemplateSet b = ProjectBlock(block, TwoWorkers(2), WorkerTemplateId(1), Bytes());
  ASSERT_EQ(a.write_deltas().size(), b.write_deltas().size());
  for (std::size_t i = 0; i < a.write_deltas().size(); ++i) {
    EXPECT_EQ(a.write_deltas()[i].object, b.write_deltas()[i].object);
    EXPECT_EQ(a.write_deltas()[i].write_count, b.write_deltas()[i].write_count);
  }
}

TEST(ProjectionTest, ObjectIndexRecordsWritersInProgramOrder) {
  ControllerTemplate block(TemplateId(0), "t");
  block.AppendEntry({kFn, {}, {LogicalObjectId(1)}, 0, 0, false, -1, {}});
  block.AppendEntry({kFn, {LogicalObjectId(1)}, {LogicalObjectId(1)}, 1, 0, false, -1, {}});
  block.MarkFinished();
  WorkerTemplateSet set = ProjectBlock(block, TwoWorkers(2), WorkerTemplateId(0), Bytes());
  const ObjectIndex* oi = set.FindObjectIndex(LogicalObjectId(1));
  ASSERT_NE(oi, nullptr);
  EXPECT_EQ(oi->writers, (std::vector<std::int32_t>{0, 1}));
  EXPECT_EQ(oi->touchers, (std::vector<std::int32_t>{0, 1}));
}

TEST(ProjectionTest, ParamSlotEqualsCaptureOrder) {
  TemplateManager manager;
  manager.BeginCapture("b");
  EXPECT_EQ(manager.CaptureTask(kFn, {}, {LogicalObjectId(1)}, 0, 0, false, {}), 0);
  EXPECT_EQ(manager.CaptureTask(kFn, {}, {LogicalObjectId(2)}, 0, 0, false, {}), 1);
  ControllerTemplate* tmpl = manager.FinishCapture();
  EXPECT_TRUE(tmpl->finished());
  EXPECT_EQ(tmpl->task_count(), 2u);
  EXPECT_EQ(tmpl->param_slot_count(), 2);
}

TEST(ProjectionTest, ProjectionCacheKeyedByAssignment) {
  TemplateManager manager;
  const TemplateId tid = manager.BeginCapture("b");
  manager.CaptureTask(kFn, {}, {LogicalObjectId(1)}, 0, 0, false, {});
  manager.CaptureTask(kFn, {}, {LogicalObjectId(2)}, 1, 0, false, {});
  manager.FinishCapture();

  bool newly = false;
  WorkerTemplateSet* a = manager.GetOrProject(tid, TwoWorkers(2), Bytes(), &newly);
  EXPECT_TRUE(newly);
  WorkerTemplateSet* a2 = manager.GetOrProject(tid, TwoWorkers(2), Bytes(), &newly);
  EXPECT_FALSE(newly);
  EXPECT_EQ(a, a2);

  // A different schedule projects a second set; the first remains cached.
  Assignment other = Assignment::RoundRobin(2, {WorkerId(5), WorkerId(6)});
  WorkerTemplateSet* b = manager.GetOrProject(tid, other, Bytes(), &newly);
  EXPECT_TRUE(newly);
  EXPECT_NE(a, b);
  EXPECT_EQ(manager.projection_count(), 2u);
  EXPECT_EQ(manager.FindProjection(tid, TwoWorkers(2)), a);
}

TEST(AssignmentTest, SignatureDistinguishesSchedules) {
  Assignment a = Assignment::RoundRobin(4, {WorkerId(0), WorkerId(1)});
  Assignment b = Assignment::RoundRobin(4, {WorkerId(1), WorkerId(0)});
  Assignment c = Assignment::RoundRobin(4, {WorkerId(0), WorkerId(1)});
  EXPECT_NE(a.Signature(), b.Signature());
  EXPECT_EQ(a.Signature(), c.Signature());
  EXPECT_EQ(a.Workers(), (std::vector<WorkerId>{WorkerId(0), WorkerId(1)}));
}

}  // namespace
}  // namespace nimbus::core
