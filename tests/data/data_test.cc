// Unit tests for the data model: version map, object store, payloads, durable store,
// object directory.

#include <gtest/gtest.h>

#include "src/data/durable_store.h"
#include "src/data/object_directory.h"
#include "src/data/object_store.h"
#include "src/data/payload.h"
#include "src/data/version_map.h"

namespace nimbus {
namespace {

TEST(VersionMapTest, CreateAndLookup) {
  VersionMap vm;
  vm.CreateObject(LogicalObjectId(1), WorkerId(0));
  EXPECT_TRUE(vm.Exists(LogicalObjectId(1)));
  EXPECT_EQ(vm.latest(LogicalObjectId(1)), 0u);
  EXPECT_TRUE(vm.WorkerHasLatest(LogicalObjectId(1), WorkerId(0)));
  EXPECT_FALSE(vm.WorkerHasLatest(LogicalObjectId(1), WorkerId(1)));
}

TEST(VersionMapTest, WriteInvalidatesOtherInstances) {
  VersionMap vm;
  vm.CreateObject(LogicalObjectId(1), WorkerId(0));
  vm.RecordCopyToLatest(LogicalObjectId(1), WorkerId(1));
  EXPECT_TRUE(vm.WorkerHasLatest(LogicalObjectId(1), WorkerId(1)));

  vm.RecordWrite(LogicalObjectId(1), WorkerId(2));
  EXPECT_EQ(vm.latest(LogicalObjectId(1)), 1u);
  EXPECT_FALSE(vm.WorkerHasLatest(LogicalObjectId(1), WorkerId(0)));
  EXPECT_FALSE(vm.WorkerHasLatest(LogicalObjectId(1), WorkerId(1)));
  EXPECT_TRUE(vm.WorkerHasLatest(LogicalObjectId(1), WorkerId(2)));
  EXPECT_EQ(vm.AnyLatestHolder(LogicalObjectId(1)), WorkerId(2));
}

TEST(VersionMapTest, LatestHoldersListsAllReplicas) {
  VersionMap vm;
  vm.CreateObject(LogicalObjectId(5), WorkerId(0));
  vm.RecordWrite(LogicalObjectId(5), WorkerId(0));
  vm.RecordCopyToLatest(LogicalObjectId(5), WorkerId(1));
  vm.RecordCopyToLatest(LogicalObjectId(5), WorkerId(2));
  EXPECT_EQ(vm.LatestHolders(LogicalObjectId(5)).size(), 3u);
}

TEST(VersionMapTest, DropWorkerRemovesInstances) {
  VersionMap vm;
  vm.CreateObject(LogicalObjectId(1), WorkerId(0));
  vm.CreateObject(LogicalObjectId(2), WorkerId(0));
  vm.RecordCopyToLatest(LogicalObjectId(1), WorkerId(1));
  vm.DropWorker(WorkerId(0));
  EXPECT_FALSE(vm.WorkerHasLatest(LogicalObjectId(1), WorkerId(0)));
  EXPECT_TRUE(vm.WorkerHasLatest(LogicalObjectId(1), WorkerId(1)));
  // Object 2's only replica is gone.
  EXPECT_FALSE(vm.AnyLatestHolder(LogicalObjectId(2)).valid());
}

TEST(VersionMapTest, SnapshotRestoreRoundTrip) {
  VersionMap vm;
  vm.CreateObject(LogicalObjectId(1), WorkerId(0));
  vm.RecordWrite(LogicalObjectId(1), WorkerId(0));
  auto snapshot = vm.Snapshot();
  vm.RecordWrite(LogicalObjectId(1), WorkerId(1));
  EXPECT_EQ(vm.latest(LogicalObjectId(1)), 2u);
  vm.Restore(std::move(snapshot));
  EXPECT_EQ(vm.latest(LogicalObjectId(1)), 1u);
  EXPECT_TRUE(vm.WorkerHasLatest(LogicalObjectId(1), WorkerId(0)));
}

TEST(VersionMapTest, InstanceCountTracksReplication) {
  VersionMap vm;
  vm.CreateObject(LogicalObjectId(1), WorkerId(0));
  EXPECT_EQ(vm.instance_count(), 1u);
  vm.RecordCopyToLatest(LogicalObjectId(1), WorkerId(1));
  vm.RecordCopyToLatest(LogicalObjectId(1), WorkerId(2));
  EXPECT_EQ(vm.instance_count(), 3u);
}

TEST(ObjectStoreTest, PutGetAndVersions) {
  ObjectStore store;
  store.Put(LogicalObjectId(9), 3, std::make_unique<ScalarPayload>(2.5));
  EXPECT_TRUE(store.Has(LogicalObjectId(9)));
  EXPECT_EQ(store.version(LogicalObjectId(9)), 3u);
  const auto* s = dynamic_cast<const ScalarPayload*>(store.Get(LogicalObjectId(9)));
  ASSERT_NE(s, nullptr);
  EXPECT_DOUBLE_EQ(s->value(), 2.5);
}

TEST(ObjectStoreTest, PutReplacesInPlace) {
  ObjectStore store;
  store.Put(LogicalObjectId(9), 1, std::make_unique<ScalarPayload>(1.0));
  store.Put(LogicalObjectId(9), 2, std::make_unique<ScalarPayload>(7.0));
  EXPECT_EQ(store.size(), 1u);
  EXPECT_EQ(store.version(LogicalObjectId(9)), 2u);
  EXPECT_DOUBLE_EQ(
      dynamic_cast<const ScalarPayload*>(store.Get(LogicalObjectId(9)))->value(), 7.0);
}

TEST(ObjectStoreTest, SnapshotIsDeepCopy) {
  ObjectStore store;
  store.Put(LogicalObjectId(1), 1, std::make_unique<VectorPayload>(std::vector<double>{1, 2}));
  auto snapshot = store.SnapshotAll();
  dynamic_cast<VectorPayload*>(store.GetMutable(LogicalObjectId(1)))->values()[0] = 99;
  const auto* snap =
      dynamic_cast<const VectorPayload*>(snapshot.at(LogicalObjectId(1)).payload.get());
  EXPECT_DOUBLE_EQ(snap->values()[0], 1.0);
}

TEST(ObjectStoreTest, DenseAccessorsMatchSparseShims) {
  ObjectStore store;
  const DenseIndex a = store.Intern(LogicalObjectId(40));
  EXPECT_EQ(store.Intern(LogicalObjectId(40)), a) << "interning is idempotent";
  EXPECT_FALSE(store.HasDense(a));

  store.PutDense(a, 5, std::make_unique<ScalarPayload>(1.25));
  EXPECT_TRUE(store.Has(LogicalObjectId(40)));
  EXPECT_EQ(store.version(LogicalObjectId(40)), 5u);
  EXPECT_EQ(store.VersionDense(a), 5u);
  store.BumpVersionDense(a, 6);
  EXPECT_EQ(store.version(LogicalObjectId(40)), 6u);

  store.EraseDense(a);
  EXPECT_FALSE(store.Has(LogicalObjectId(40)));
  EXPECT_EQ(store.size(), 0u);
  // The dense index survives erasure (never reused) and accepts a new instance.
  store.PutDense(a, 7, std::make_unique<ScalarPayload>(2.5));
  EXPECT_EQ(store.size(), 1u);
}

TEST(VersionMapTest, ChurnEpochTracksResidencyChurnOnly) {
  VersionMap vm;
  const std::uint64_t start = vm.churn_epoch();
  vm.CreateObject(LogicalObjectId(1), WorkerId(0));
  vm.RecordWrite(LogicalObjectId(1), WorkerId(0));
  vm.RecordCopyToLatest(LogicalObjectId(1), WorkerId(1));
  EXPECT_EQ(vm.churn_epoch(), start) << "normal block flow must not bump the epoch";

  vm.DropInstance(LogicalObjectId(1), WorkerId(1));
  EXPECT_GT(vm.churn_epoch(), start);
  const std::uint64_t after_drop = vm.churn_epoch();
  vm.DropWorker(WorkerId(0));
  EXPECT_GT(vm.churn_epoch(), after_drop);
}

TEST(PayloadTest, CloneIsIndependent) {
  VectorPayload v(std::vector<double>{1, 2, 3});
  auto clone = v.Clone();
  v.values()[0] = 42;
  EXPECT_DOUBLE_EQ(dynamic_cast<VectorPayload*>(clone.get())->values()[0], 1.0);
  EXPECT_EQ(clone->ByteSize(), 24);
}

TEST(PayloadTest, TypedPayloadWrapsStructs) {
  struct Grid {
    int nx = 4;
    double data[4] = {1, 2, 3, 4};
  };
  TypedPayload<Grid> p;
  p.value().data[2] = 9.5;
  auto clone = p.Clone();
  EXPECT_DOUBLE_EQ(dynamic_cast<TypedPayload<Grid>*>(clone.get())->value().data[2], 9.5);
}

TEST(DurableStoreTest, WriteReadRoundTrip) {
  DurableStore durable;
  VectorPayload v(std::vector<double>{5, 6});
  durable.Write(LogicalObjectId(3), 7, v);
  ASSERT_TRUE(durable.Has(LogicalObjectId(3)));
  const auto& entry = durable.Read(LogicalObjectId(3));
  EXPECT_EQ(entry.version, 7u);
  EXPECT_DOUBLE_EQ(dynamic_cast<const VectorPayload*>(entry.payload.get())->values()[1], 6.0);
}

TEST(ObjectDirectoryTest, VariablesAndObjects) {
  ObjectDirectory dir;
  const VariableId var = dir.DefineVariable("tdata", 4, 1000);
  EXPECT_EQ(dir.variable(var).partitions, 4);
  EXPECT_EQ(dir.object_count(), 4u);
  const LogicalObjectId obj = dir.ObjectFor(var, 2);
  EXPECT_EQ(dir.object(obj).partition, 2);
  EXPECT_EQ(dir.object(obj).virtual_bytes, 1000);
  EXPECT_EQ(dir.FindVariable("tdata"), var);
  EXPECT_TRUE(dir.HasVariable("tdata"));
  EXPECT_FALSE(dir.HasVariable("nope"));
}

TEST(ObjectDirectoryTest, ObjectIdsAreStable) {
  ObjectDirectory dir;
  const VariableId a = dir.DefineVariable("a", 2, 10);
  const VariableId b = dir.DefineVariable("b", 2, 10);
  EXPECT_NE(dir.ObjectFor(a, 0), dir.ObjectFor(b, 0));
  EXPECT_EQ(dir.ObjectFor(a, 1), dir.ObjectFor(a, 1));
}

}  // namespace
}  // namespace nimbus
