// Regression tests for the dense-id VersionMap refactor: the array-backed implementation
// must be observably equivalent to the unordered_map-of-unordered_maps it replaced, and its
// dense fast path must agree with the sparse API it shadows.

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "src/data/version_map.h"

namespace nimbus {
namespace {

std::vector<WorkerId> Sorted(std::vector<WorkerId> v) {
  std::sort(v.begin(), v.end());
  return v;
}

TEST(VersionMapDenseTest, DropWorkerMatchesLegacyBehavior) {
  VersionMap vm;
  vm.CreateObject(LogicalObjectId(1), WorkerId(0));
  vm.CreateObject(LogicalObjectId(2), WorkerId(1));
  vm.RecordCopyToLatest(LogicalObjectId(1), WorkerId(1));
  vm.RecordCopyToLatest(LogicalObjectId(1), WorkerId(2));
  EXPECT_EQ(vm.instance_count(), 4u);

  vm.DropWorker(WorkerId(1));
  EXPECT_EQ(vm.instance_count(), 2u);
  EXPECT_FALSE(vm.WorkerHasLatest(LogicalObjectId(1), WorkerId(1)));
  EXPECT_TRUE(vm.WorkerHasLatest(LogicalObjectId(1), WorkerId(0)));
  EXPECT_TRUE(vm.WorkerHasLatest(LogicalObjectId(1), WorkerId(2)));
  // Object 2 lost its only replica.
  EXPECT_FALSE(vm.AnyLatestHolder(LogicalObjectId(2)).valid());
  EXPECT_TRUE(vm.LatestHolders(LogicalObjectId(2)).empty());

  // Dropping a worker the map has never seen is a no-op, not a crash.
  vm.DropWorker(WorkerId(99));
  EXPECT_EQ(vm.instance_count(), 2u);

  // The dropped worker can come back and hold fresh instances.
  vm.RecordWrite(LogicalObjectId(1), WorkerId(1));
  EXPECT_TRUE(vm.WorkerHasLatest(LogicalObjectId(1), WorkerId(1)));
  EXPECT_FALSE(vm.WorkerHasLatest(LogicalObjectId(1), WorkerId(0)));
}

TEST(VersionMapDenseTest, LatestHoldersListsExactlyTheLatestReplicas) {
  VersionMap vm;
  vm.CreateObject(LogicalObjectId(5), WorkerId(0));
  vm.RecordWrite(LogicalObjectId(5), WorkerId(0));
  vm.RecordCopyToLatest(LogicalObjectId(5), WorkerId(2));
  vm.RecordCopyToLatest(LogicalObjectId(5), WorkerId(4));
  EXPECT_EQ(Sorted(vm.LatestHolders(LogicalObjectId(5))),
            (std::vector<WorkerId>{WorkerId(0), WorkerId(2), WorkerId(4)}));

  // A new write leaves the other replicas stale but still tracked as instances.
  vm.RecordWrite(LogicalObjectId(5), WorkerId(2));
  EXPECT_EQ(Sorted(vm.LatestHolders(LogicalObjectId(5))),
            (std::vector<WorkerId>{WorkerId(2)}));
  EXPECT_EQ(vm.instance_count(), 3u);
  EXPECT_EQ(vm.AnyLatestHolder(LogicalObjectId(5)), WorkerId(2));
}

TEST(VersionMapDenseTest, SnapshotRestoreRoundTripPreservesAllState) {
  VersionMap vm;
  vm.CreateObject(LogicalObjectId(1), WorkerId(0));
  vm.CreateObject(LogicalObjectId(2), WorkerId(1));
  vm.RecordWrite(LogicalObjectId(1), WorkerId(0));
  vm.RecordWrite(LogicalObjectId(1), WorkerId(0));
  vm.RecordCopyToLatest(LogicalObjectId(1), WorkerId(1));

  const VersionMap::SnapshotState snapshot = vm.Snapshot();

  // Diverge: more writes, a new object, a destroyed object.
  vm.RecordWrite(LogicalObjectId(1), WorkerId(2));
  vm.DestroyObject(LogicalObjectId(2));
  vm.CreateObject(LogicalObjectId(3), WorkerId(0));
  EXPECT_EQ(vm.object_count(), 2u);

  vm.Restore(snapshot);
  EXPECT_EQ(vm.object_count(), 2u);
  EXPECT_TRUE(vm.Exists(LogicalObjectId(1)));
  EXPECT_TRUE(vm.Exists(LogicalObjectId(2)));
  EXPECT_FALSE(vm.Exists(LogicalObjectId(3)));
  EXPECT_EQ(vm.latest(LogicalObjectId(1)), 2u);
  EXPECT_TRUE(vm.WorkerHasLatest(LogicalObjectId(1), WorkerId(0)));
  EXPECT_TRUE(vm.WorkerHasLatest(LogicalObjectId(1), WorkerId(1)));
  EXPECT_FALSE(vm.WorkerHasLatest(LogicalObjectId(1), WorkerId(2)));
  EXPECT_EQ(vm.latest(LogicalObjectId(2)), 0u);
  EXPECT_EQ(vm.instance_count(), 3u);
}

TEST(VersionMapDenseTest, DenseIndicesAreStableAcrossRestoreAndDestroy) {
  VersionMap vm;
  vm.CreateObject(LogicalObjectId(7), WorkerId(0));
  const DenseIndex obj = vm.InternObject(LogicalObjectId(7));
  const DenseIndex w0 = vm.InternWorker(WorkerId(0));

  const VersionMap::SnapshotState snapshot = vm.Snapshot();
  vm.RecordWrite(LogicalObjectId(7), WorkerId(1));
  vm.Restore(snapshot);

  // Compiled plans cache dense ids for the map's lifetime: they must survive restore.
  EXPECT_EQ(vm.InternObject(LogicalObjectId(7)), obj);
  EXPECT_EQ(vm.InternWorker(WorkerId(0)), w0);
  EXPECT_TRUE(vm.ExistsDense(obj));
  EXPECT_TRUE(vm.WorkerHasLatestDense(obj, w0));

  // Destroy keeps the slot allocated (dense id never reused) but empty.
  vm.DestroyObject(LogicalObjectId(7));
  EXPECT_EQ(vm.InternObject(LogicalObjectId(7)), obj);
  EXPECT_FALSE(vm.ExistsDense(obj));
  EXPECT_EQ(vm.object_count(), 0u);

  // Recreating starts a fresh version history in the same slot.
  vm.CreateObject(LogicalObjectId(7), WorkerId(2));
  EXPECT_EQ(vm.latest(LogicalObjectId(7)), 0u);
  EXPECT_EQ(vm.LatestHolders(LogicalObjectId(7)), (std::vector<WorkerId>{WorkerId(2)}));
}

TEST(VersionMapDenseTest, DenseFastPathAgreesWithSparseApi) {
  VersionMap dense;
  VersionMap sparse;
  for (auto* vm : {&dense, &sparse}) {
    vm->CreateObject(LogicalObjectId(1), WorkerId(0));
    vm->CreateObject(LogicalObjectId(2), WorkerId(1));
  }

  // Dense side: one AdvanceVersionsDense(3) + copy. Sparse side: three RecordWrite + copy.
  const DenseIndex obj = dense.InternObject(LogicalObjectId(1));
  const DenseIndex w0 = dense.InternWorker(WorkerId(0));
  const DenseIndex w1 = dense.InternWorker(WorkerId(1));
  dense.AdvanceVersionsDense(obj, w0, 3);
  dense.RecordCopyToLatestDense(obj, w1);

  for (int i = 0; i < 3; ++i) {
    sparse.RecordWrite(LogicalObjectId(1), WorkerId(0));
  }
  sparse.RecordCopyToLatest(LogicalObjectId(1), WorkerId(1));

  for (auto* vm : {&dense, &sparse}) {
    EXPECT_EQ(vm->latest(LogicalObjectId(1)), 3u);
    EXPECT_EQ(Sorted(vm->LatestHolders(LogicalObjectId(1))),
              (std::vector<WorkerId>{WorkerId(0), WorkerId(1)}));
    EXPECT_EQ(vm->instance_count(), 3u);
  }

  // CreateObjectDense on a slot interned before creation behaves like CreateObject.
  const DenseIndex fresh = dense.InternObject(LogicalObjectId(9));
  EXPECT_FALSE(dense.ExistsDense(fresh));
  dense.CreateObjectDense(fresh, w1);
  EXPECT_TRUE(dense.Exists(LogicalObjectId(9)));
  EXPECT_TRUE(dense.WorkerHasLatest(LogicalObjectId(9), WorkerId(1)));
}

TEST(VersionMapDenseTest, CopiesGetFreshUidsSoCachedPlansCannotAlias) {
  VersionMap a;
  a.CreateObject(LogicalObjectId(1), WorkerId(0));
  VersionMap b = a;
  EXPECT_NE(a.uid(), b.uid());
  // The copy carries the same interned state...
  EXPECT_EQ(b.InternObject(LogicalObjectId(1)), a.InternObject(LogicalObjectId(1)));
  EXPECT_TRUE(b.Exists(LogicalObjectId(1)));
  // ...but diverges independently.
  b.RecordWrite(LogicalObjectId(1), WorkerId(1));
  EXPECT_EQ(a.latest(LogicalObjectId(1)), 0u);
  EXPECT_EQ(b.latest(LogicalObjectId(1)), 1u);
}

}  // namespace
}  // namespace nimbus
