// K-means end-to-end: distributed result must match the sequential reference exactly.

#include <gtest/gtest.h>

#include "src/apps/kmeans.h"
#include "src/driver/cluster.h"
#include "src/driver/job.h"

namespace nimbus {
namespace {

using apps::KMeansApp;

KMeansApp::Config SmallConfig(int partitions, int groups) {
  KMeansApp::Config config;
  config.partitions = partitions;
  config.reduce_groups = groups;
  config.dim = 3;
  config.clusters = 3;
  config.points_per_partition = 24;
  config.virtual_bytes_total = 64LL * 1000 * 1000;
  return config;
}

TEST(KMeansTest, MatchesReferenceWithTemplates) {
  ClusterOptions options;
  options.workers = 4;
  options.partitions = 8;
  options.mode = ControlMode::kTemplates;
  Cluster cluster(options);
  Job job(&cluster);

  KMeansApp::Config config = SmallConfig(8, 4);
  KMeansApp app(&job, config);
  app.Setup();
  app.RunIterations(6);

  const auto expected = KMeansApp::ReferenceRun(config, 6);
  const auto actual = app.CentroidSnapshot();
  ASSERT_EQ(expected.size(), actual.size());
  for (std::size_t i = 0; i < expected.size(); ++i) {
    EXPECT_DOUBLE_EQ(expected[i], actual[i]) << "centroid coordinate " << i;
  }
}

TEST(KMeansTest, MovementDecreasesOverIterations) {
  ClusterOptions options;
  options.workers = 3;
  options.partitions = 6;
  Cluster cluster(options);
  Job job(&cluster);

  KMeansApp app(&job, SmallConfig(6, 3));
  app.Setup();
  const double first = app.RunIteration().FirstScalar();
  double last = first;
  for (int i = 0; i < 7; ++i) {
    last = app.RunIteration().FirstScalar();
  }
  EXPECT_GT(first, 0.0);
  EXPECT_LT(last, first) << "k-means should move centroids less as it converges";
}

TEST(KMeansTest, ConvergesToFixedPoint) {
  ClusterOptions options;
  options.workers = 4;
  options.partitions = 8;
  Cluster cluster(options);
  Job job(&cluster);

  KMeansApp app(&job, SmallConfig(8, 4));
  app.Setup();
  double movement = 1e9;
  int iters = 0;
  while (movement > 1e-12 && iters < 50) {
    movement = app.RunIteration().FirstScalar();
    ++iters;
  }
  EXPECT_LT(movement, 1e-12) << "k-means should reach a fixed point on separable clusters";
  EXPECT_LT(iters, 50);
}

TEST(KMeansTest, CentralAndTemplateModesAgree) {
  auto run = [](ControlMode mode) {
    ClusterOptions options;
    options.workers = 4;
    options.partitions = 8;
    options.mode = mode;
    Cluster cluster(options);
    Job job(&cluster);
    KMeansApp app(&job, SmallConfig(8, 4));
    app.Setup();
    app.RunIterations(5);
    return app.CentroidSnapshot();
  };
  EXPECT_EQ(run(ControlMode::kTemplates), run(ControlMode::kCentralOnly));
}

}  // namespace
}  // namespace nimbus
