// End-to-end correctness: the distributed logistic regression must match a sequential
// reference bit-for-bit across all control-plane modes, iteration counts and cluster sizes.

#include <gtest/gtest.h>

#include "src/apps/logistic_regression.h"
#include "src/driver/cluster.h"
#include "src/driver/job.h"

namespace nimbus {
namespace {

using apps::LogisticRegressionApp;

LogisticRegressionApp::Config SmallConfig(int partitions, int groups) {
  LogisticRegressionApp::Config config;
  config.partitions = partitions;
  config.reduce_groups = groups;
  config.dim = 6;
  config.rows_per_partition = 16;
  config.virtual_bytes_total = 64LL * 1000 * 1000;
  return config;
}

struct ModeCase {
  ControlMode mode;
  const char* name;
};

class LrEndToEndTest : public ::testing::TestWithParam<ModeCase> {};

TEST_P(LrEndToEndTest, MatchesSequentialReference) {
  ClusterOptions options;
  options.workers = 4;
  options.partitions = 8;
  options.mode = GetParam().mode;
  Cluster cluster(options);
  Job job(&cluster);

  LogisticRegressionApp::Config config = SmallConfig(8, 4);
  LogisticRegressionApp app(&job, config);
  app.Setup();

  const int iters = 6;
  double norm = app.RunInnerLoop(iters);
  EXPECT_GT(norm, 0.0);

  const std::vector<double> expected =
      LogisticRegressionApp::ReferenceInnerLoop(config, iters);
  const std::vector<double> actual = app.CoeffSnapshot();
  ASSERT_EQ(expected.size(), actual.size());
  for (std::size_t d = 0; d < expected.size(); ++d) {
    EXPECT_DOUBLE_EQ(expected[d], actual[d]) << "coefficient " << d;
  }
}

TEST_P(LrEndToEndTest, GradientNormDecreases) {
  ClusterOptions options;
  options.workers = 3;
  options.partitions = 6;
  options.mode = GetParam().mode;
  Cluster cluster(options);
  Job job(&cluster);

  LogisticRegressionApp app(&job, SmallConfig(6, 3));
  app.Setup();

  double first = app.RunInnerIteration().FirstScalar();
  double last = first;
  for (int i = 0; i < 9; ++i) {
    last = app.RunInnerIteration().FirstScalar();
  }
  EXPECT_LT(last, first) << "gradient descent is not converging";
}

TEST_P(LrEndToEndTest, NestedLoopRunsDataDependentBranches) {
  ClusterOptions options;
  options.workers = 4;
  options.partitions = 8;
  options.mode = GetParam().mode;
  Cluster cluster(options);
  Job job(&cluster);

  LogisticRegressionApp app(&job, SmallConfig(8, 4));
  app.Setup();

  const auto result = app.RunNestedLoop(/*threshold_g=*/0.05, /*threshold_e=*/1e-9,
                                        /*max_inner=*/20, /*max_outer=*/3);
  EXPECT_EQ(result.outer_iterations, 3);
  EXPECT_GT(result.total_inner_iterations, 3);
  EXPECT_GT(result.final_error, 0.0);
}

INSTANTIATE_TEST_SUITE_P(
    AllModes, LrEndToEndTest,
    ::testing::Values(ModeCase{ControlMode::kTemplates, "templates"},
                      ModeCase{ControlMode::kCentralOnly, "central"},
                      ModeCase{ControlMode::kStaticDataflow, "dataflow"}),
    [](const ::testing::TestParamInfo<ModeCase>& param_info) {
      return param_info.param.name;
    });

// Sweep cluster geometries with templates: uneven partition/worker ratios, single worker,
// more groups than workers.
struct Geometry {
  int workers;
  int partitions;
  int groups;
};

class LrGeometryTest : public ::testing::TestWithParam<Geometry> {};

TEST_P(LrGeometryTest, MatchesReferenceAcrossGeometries) {
  const Geometry geom = GetParam();
  ClusterOptions options;
  options.workers = geom.workers;
  options.partitions = geom.partitions;
  options.mode = ControlMode::kTemplates;
  Cluster cluster(options);
  Job job(&cluster);

  LogisticRegressionApp::Config config = SmallConfig(geom.partitions, geom.groups);
  LogisticRegressionApp app(&job, config);
  app.Setup();
  app.RunInnerLoop(5);

  const auto expected = LogisticRegressionApp::ReferenceInnerLoop(config, 5);
  const auto actual = app.CoeffSnapshot();
  ASSERT_EQ(expected.size(), actual.size());
  for (std::size_t d = 0; d < expected.size(); ++d) {
    EXPECT_DOUBLE_EQ(expected[d], actual[d]);
  }
}

INSTANTIATE_TEST_SUITE_P(Geometries, LrGeometryTest,
                         ::testing::Values(Geometry{1, 4, 2}, Geometry{2, 8, 4},
                                           Geometry{3, 7, 3}, Geometry{4, 8, 8},
                                           Geometry{5, 20, 5}, Geometry{8, 8, 2}),
                         [](const ::testing::TestParamInfo<Geometry>& param_info) {
                           return "w" + std::to_string(param_info.param.workers) + "_p" +
                                  std::to_string(param_info.param.partitions) + "_g" +
                                  std::to_string(param_info.param.groups);
                         });

}  // namespace
}  // namespace nimbus
