// Property-based differential test: random iterative programs must produce bit-identical
// data no matter which control plane executes them (templates vs central vs static
// dataflow), and repeated runs must be deterministic.
//
// Programs are random but well-formed: every read is of an object initialized or already
// written, placements are random, stages chain through random subsets of variables, and one
// final stage folds everything into a checksum object.

#include <gtest/gtest.h>

#include <map>
#include <string>
#include <vector>

#include "src/common/rng.h"
#include "src/driver/cluster.h"
#include "src/driver/job.h"

namespace nimbus {
namespace {

struct ProgramSpec {
  std::uint64_t seed;
  int workers;
  int partitions;
  int variables;
  int stages_per_block;
  int blocks;
  int iterations;
};

// Deterministically derives a random program from `spec`, builds it on `job`, runs it, and
// returns the final value of every object in the system.
std::map<std::uint64_t, std::vector<double>> BuildAndRun(Cluster* cluster, Job* job,
                                                         const ProgramSpec& spec) {
  Rng rng(spec.seed);
  const int p = spec.partitions;

  // One shared combine function: out[i] = sum over reads of (read[i] * weight) + bias.
  const FunctionId combine =
      job->RegisterFunction("combine", [](TaskContext& ctx) {
        BlobReader r(ctx.params());
        const double weight = r.ReadDouble();
        const double bias = r.ReadDouble();
        auto& out = ctx.WriteVector(0, 4).values();
        out.assign(4, bias);
        for (std::size_t i = 0; i < ctx.read_count(); ++i) {
          const auto& in = ctx.ReadVector(i).values();
          for (std::size_t j = 0; j < out.size() && j < in.size(); ++j) {
            out[j] += weight * in[j];
          }
        }
      });
  const FunctionId init = job->RegisterFunction("init", [](TaskContext& ctx) {
    BlobReader r(ctx.params());
    const double v = r.ReadDouble();
    ctx.WriteVector(0, 4).values().assign(4, v);
  });

  std::vector<VariableId> vars;
  for (int v = 0; v < spec.variables; ++v) {
    vars.push_back(job->DefineVariable("var" + std::to_string(v), p, 1000));
  }

  // Init stage: every object gets a seed-derived value.
  {
    std::vector<StageDescriptor> stages;
    StageDescriptor stage;
    stage.name = "init";
    for (int v = 0; v < spec.variables; ++v) {
      for (int q = 0; q < p; ++q) {
        TaskDescriptor task;
        task.function = init;
        task.writes = {ObjRef{vars[static_cast<std::size_t>(v)], q}};
        task.placement_partition = q;
        task.duration = sim::Micros(100);
        BlobWriter w;
        w.WriteDouble(static_cast<double>(v * 100 + q) + 0.5);
        task.params = w.Take();
        stage.tasks.push_back(std::move(task));
      }
    }
    stages.push_back(std::move(stage));
    job->RunStages(std::move(stages));
  }

  // Random blocks: each stage maps over all partitions of a target variable, reading 1-3
  // other (variable, partition) pairs with random cross-partition references.
  for (int b = 0; b < spec.blocks; ++b) {
    std::vector<StageDescriptor> stages;
    for (int s = 0; s < spec.stages_per_block; ++s) {
      StageDescriptor stage;
      stage.name = "b" + std::to_string(b) + "s" + std::to_string(s);
      const auto target = static_cast<std::size_t>(rng.NextBounded(vars.size()));
      const int n_reads = 1 + static_cast<int>(rng.NextBounded(3));
      for (int q = 0; q < p; ++q) {
        TaskDescriptor task;
        task.function = combine;
        for (int r = 0; r < n_reads; ++r) {
          const auto read_var = static_cast<std::size_t>(rng.NextBounded(vars.size()));
          const auto read_part =
              static_cast<int>(rng.NextBounded(static_cast<std::uint64_t>(p)));
          task.reads.push_back(ObjRef{vars[read_var], read_part});
        }
        task.writes = {ObjRef{vars[target], q}};
        task.placement_partition =
            static_cast<int>(rng.NextBounded(static_cast<std::uint64_t>(p)));
        task.duration = sim::Micros(200);
        BlobWriter w;
        w.WriteDouble(0.5 + 0.25 * static_cast<double>(rng.NextBounded(4)));
        w.WriteDouble(static_cast<double>(rng.NextBounded(10)));
        task.params = w.Take();
        stage.tasks.push_back(std::move(task));
      }
      stages.push_back(std::move(stage));
    }
    job->DefineBlock("block" + std::to_string(b), std::move(stages));
  }

  // Drive the blocks in a repetitive, interleaved pattern (what templates exploit).
  for (int it = 0; it < spec.iterations; ++it) {
    for (int b = 0; b < spec.blocks; ++b) {
      job->RunBlock("block" + std::to_string(b));
    }
  }

  // Collect every object's final value from its latest holder.
  std::map<std::uint64_t, std::vector<double>> result;
  for (VariableId var : vars) {
    const auto& info = cluster->directory().variable(var);
    for (LogicalObjectId obj : info.objects) {
      const WorkerId holder = cluster->controller().versions().AnyLatestHolder(obj);
      if (!holder.valid()) {
        continue;
      }
      Worker* worker = cluster->worker(holder);
      const auto* payload = dynamic_cast<const VectorPayload*>(worker->store().Get(obj));
      result[obj.value()] = payload->values();
    }
  }
  return result;
}

std::map<std::uint64_t, std::vector<double>> RunProgram(const ProgramSpec& spec,
                                                        ControlMode mode) {
  ClusterOptions options;
  options.workers = spec.workers;
  options.partitions = spec.partitions;
  options.mode = mode;
  Cluster cluster(options);
  Job job(&cluster);
  return BuildAndRun(&cluster, &job, spec);
}

class RandomProgramTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RandomProgramTest, AllControlPlanesAgree) {
  ProgramSpec spec;
  spec.seed = GetParam();
  Rng shape(spec.seed * 31 + 7);
  spec.workers = 2 + static_cast<int>(shape.NextBounded(4));
  spec.partitions = spec.workers * (1 + static_cast<int>(shape.NextBounded(3)));
  spec.variables = 3 + static_cast<int>(shape.NextBounded(4));
  spec.stages_per_block = 1 + static_cast<int>(shape.NextBounded(3));
  spec.blocks = 1 + static_cast<int>(shape.NextBounded(3));
  spec.iterations = 4;

  const auto with_templates = RunProgram(spec, ControlMode::kTemplates);
  const auto central = RunProgram(spec, ControlMode::kCentralOnly);
  const auto dataflow = RunProgram(spec, ControlMode::kStaticDataflow);

  ASSERT_FALSE(with_templates.empty());
  EXPECT_EQ(with_templates, central);
  EXPECT_EQ(with_templates, dataflow);
}

TEST_P(RandomProgramTest, RunsAreDeterministic) {
  ProgramSpec spec;
  spec.seed = GetParam();
  Rng shape(spec.seed * 31 + 7);
  spec.workers = 2 + static_cast<int>(shape.NextBounded(4));
  spec.partitions = spec.workers * (1 + static_cast<int>(shape.NextBounded(3)));
  spec.variables = 3 + static_cast<int>(shape.NextBounded(4));
  spec.stages_per_block = 1 + static_cast<int>(shape.NextBounded(3));
  spec.blocks = 1 + static_cast<int>(shape.NextBounded(3));
  spec.iterations = 3;

  const auto a = RunProgram(spec, ControlMode::kTemplates);
  const auto b = RunProgram(spec, ControlMode::kTemplates);
  EXPECT_EQ(a, b);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomProgramTest,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34, 55, 89, 144, 233));

}  // namespace
}  // namespace nimbus
