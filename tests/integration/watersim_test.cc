// Water-simulation proxy: nested data-dependent loops, CG convergence, determinism across
// control-plane modes, and template reuse across the five basic blocks.

#include <gtest/gtest.h>

#include "src/apps/watersim.h"
#include "src/driver/cluster.h"
#include "src/driver/job.h"

namespace nimbus {
namespace {

using apps::WaterSimApp;

WaterSimApp::Config SmallConfig() {
  WaterSimApp::Config config;
  config.partitions = 4;
  config.reduce_groups = 2;
  config.nx = 4;
  config.ny = 4;
  config.nz_local = 4;
  config.frame_duration = 0.4;
  config.max_substeps = 6;
  config.max_cg_iterations = 40;
  // Keep modeled durations small so simulated frames are quick in tests.
  config.advect_task = sim::Millis(2);
  config.small_task = sim::Millis(1);
  config.cg_task = sim::Micros(300);
  return config;
}

TEST(WaterSimTest, FrameRunsTriplyNestedLoop) {
  ClusterOptions options;
  options.workers = 2;
  options.partitions = 4;
  options.mode = ControlMode::kTemplates;
  Cluster cluster(options);
  Job job(&cluster);

  WaterSimApp app(&job, SmallConfig());
  app.Setup();

  const auto stats = app.RunFrame();
  EXPECT_GT(stats.substeps, 1) << "middle loop should take several CFL substeps";
  EXPECT_GT(stats.total_cg_iterations, stats.substeps)
      << "inner CG loop should iterate at least once per substep";
  EXPECT_GE(stats.frame_time, SmallConfig().frame_duration - 1e-9);
}

TEST(WaterSimTest, CgResidualConverges) {
  ClusterOptions options;
  options.workers = 2;
  options.partitions = 4;
  options.mode = ControlMode::kTemplates;
  Cluster cluster(options);
  Job job(&cluster);

  WaterSimApp::Config config = SmallConfig();
  WaterSimApp app(&job, config);
  app.Setup();

  const auto stats = app.RunFrame();
  EXPECT_LE(stats.last_residual, config.cg_tolerance)
      << "CG failed to converge within the iteration cap";
}

TEST(WaterSimTest, VolumeApproximatelyConserved) {
  ClusterOptions options;
  options.workers = 2;
  options.partitions = 4;
  options.mode = ControlMode::kTemplates;
  Cluster cluster(options);
  Job job(&cluster);

  WaterSimApp app(&job, SmallConfig());
  app.Setup();
  const double before = app.MeasureVolume();
  app.RunFrame();
  const double after = app.MeasureVolume();
  EXPECT_GT(before, 0.0);
  // The proxy's first-order advection is diffusive; allow generous drift but not collapse.
  EXPECT_GT(after, 0.3 * before);
  EXPECT_LT(after, 2.0 * before);
}

// The same program must take identical control-flow decisions (substeps, CG iterations) and
// produce identical physics no matter which control plane runs it.
TEST(WaterSimTest, ControlFlowIdenticalAcrossModes) {
  auto run = [](ControlMode mode) {
    ClusterOptions options;
    options.workers = 3;
    options.partitions = 4;
    options.mode = mode;
    Cluster cluster(options);
    Job job(&cluster);
    WaterSimApp app(&job, SmallConfig());
    app.Setup();
    auto stats = app.RunFrame();
    return std::make_tuple(stats.substeps, stats.total_cg_iterations, app.MeasureVolume(),
                           stats.max_speed);
  };

  const auto with_templates = run(ControlMode::kTemplates);
  const auto central = run(ControlMode::kCentralOnly);
  const auto dataflow = run(ControlMode::kStaticDataflow);
  EXPECT_EQ(with_templates, central);
  EXPECT_EQ(with_templates, dataflow);
}

TEST(WaterSimTest, TemplatesAreReusedAcrossBlocks) {
  ClusterOptions options;
  options.workers = 2;
  options.partitions = 4;
  options.mode = ControlMode::kTemplates;
  Cluster cluster(options);
  Job job(&cluster);

  WaterSimApp app(&job, SmallConfig());
  app.Setup();
  app.RunFrame();
  app.RunFrame();

  // Five blocks captured; the CG inner block should have executed via the template path
  // many times (instantiations far outnumber installs).
  auto& controller = cluster.controller();
  EXPECT_GE(controller.templates().template_count(), 5u);
  EXPECT_GT(controller.tasks_via_templates(), 0u);
  // The patch cache should be taking hits: block transitions are repetitive.
  EXPECT_GT(controller.templates().patch_cache().hits(), 0u);
}

TEST(WaterSimTest, DefinesPaperScaleVariableCount) {
  ClusterOptions options;
  options.workers = 2;
  options.partitions = 4;
  Cluster cluster(options);
  Job job(&cluster);
  WaterSimApp app(&job, SmallConfig());
  app.Setup();
  // Paper §5.5: "21 different computational stages that access over 40 different variables".
  EXPECT_GE(cluster.directory().variable_count(), 40u);
}

}  // namespace
}  // namespace nimbus
