// Timer facility (src/net/timer_wheel.h, DESIGN.md §14): the slotted wheel the TCP
// backend arms its timerfd from, and the virtual-clock SimTimerQueue the simulator nodes
// use. The wheel's determinism contract — never early, at most one tick late, (tick,
// insertion-seq) firing order, multi-revolution entries held back — is what makes
// wheel-driven heartbeat schedules reproducible, so each clause gets pinned here.

#include <gtest/gtest.h>

#include <vector>

#include "src/net/timer_wheel.h"
#include "src/sim/simulation.h"

namespace nimbus {
namespace {

using net::TimerQueue;
using net::TimerWheel;

// Runs every due callback and returns how many fired.
int Fire(TimerWheel* wheel, sim::TimePoint now) {
  auto fns = wheel->PopDue(now);
  for (auto& fn : fns) {
    fn();
  }
  return static_cast<int>(fns.size());
}

TEST(TimerWheelTest, FiresInTickThenInsertionOrder) {
  TimerWheel wheel(sim::Millis(1));
  std::vector<int> order;
  wheel.Schedule(0, sim::Millis(5), [&]() { order.push_back(5); });
  wheel.Schedule(0, sim::Millis(1), [&]() { order.push_back(1); });
  wheel.Schedule(0, sim::Millis(1), [&]() { order.push_back(2); });
  EXPECT_EQ(wheel.pending(), 3u);

  EXPECT_EQ(Fire(&wheel, sim::Millis(10)), 3);
  // Same-tick entries fire in insertion order; distinct ticks in tick order.
  EXPECT_EQ(order, (std::vector<int>{1, 2, 5}));
  EXPECT_EQ(wheel.pending(), 0u);
}

TEST(TimerWheelTest, NeverFiresEarlyDeadlinesRoundUpToTheTick) {
  TimerWheel wheel(sim::Millis(1));
  bool fired = false;
  // 1.5ms rounds up to tick 2: due at 2ms, not at 1ms.
  wheel.Schedule(0, sim::Micros(1500), [&]() { fired = true; });
  EXPECT_EQ(Fire(&wheel, sim::Millis(1)), 0);
  EXPECT_FALSE(fired);
  EXPECT_EQ(Fire(&wheel, sim::Millis(2)), 1);
  EXPECT_TRUE(fired);
}

TEST(TimerWheelTest, ZeroDelayLandsOnTheNextUndrainedTick) {
  TimerWheel wheel(sim::Millis(1));
  bool fired = false;
  // A zero delay cannot fire from the already-drained current tick; it lands on the next.
  wheel.Schedule(0, 0, [&]() { fired = true; });
  EXPECT_EQ(Fire(&wheel, 0), 0);
  EXPECT_EQ(Fire(&wheel, sim::Millis(1)), 1);
  EXPECT_TRUE(fired);
}

TEST(TimerWheelTest, CancelSuppressesExactlyOnce) {
  TimerWheel wheel(sim::Millis(1));
  bool fired = false;
  const TimerWheel::TimerId id = wheel.Schedule(0, sim::Millis(2), [&]() { fired = true; });
  EXPECT_TRUE(wheel.Cancel(id));
  EXPECT_EQ(wheel.pending(), 0u);
  EXPECT_FALSE(wheel.Cancel(id));  // second cancel is a no-op
  EXPECT_EQ(Fire(&wheel, sim::Millis(10)), 0);
  EXPECT_FALSE(fired);

  // Cancelling after the fire reports false too.
  const TimerWheel::TimerId late = wheel.Schedule(sim::Millis(10), sim::Millis(1), []() {});
  EXPECT_EQ(Fire(&wheel, sim::Millis(20)), 1);
  EXPECT_FALSE(wheel.Cancel(late));
  EXPECT_FALSE(wheel.Cancel(TimerQueue::kInvalidTimer));
}

TEST(TimerWheelTest, MultiRevolutionEntriesWaitTheirTurn) {
  // 4 slots of 1ms: ticks 2 and 10 share slot 2 but belong to different revolutions.
  TimerWheel wheel(sim::Millis(1), /*slots=*/4);
  std::vector<int> order;
  wheel.Schedule(0, sim::Millis(10), [&]() { order.push_back(10); });
  wheel.Schedule(0, sim::Millis(2), [&]() { order.push_back(2); });

  EXPECT_EQ(Fire(&wheel, sim::Millis(2)), 1);
  EXPECT_EQ(order, (std::vector<int>{2}));
  EXPECT_EQ(wheel.pending(), 1u);
  EXPECT_EQ(Fire(&wheel, sim::Millis(9)), 0);  // same slot passes again, wrong revolution
  EXPECT_EQ(Fire(&wheel, sim::Millis(10)), 1);
  EXPECT_EQ(order, (std::vector<int>{2, 10}));
}

TEST(TimerWheelTest, FullRevolutionJumpSweepsEverySlotInOrder) {
  TimerWheel wheel(sim::Millis(1), /*slots=*/4);
  std::vector<int> order;
  for (int ms : {7, 3, 5, 11}) {
    wheel.Schedule(0, sim::Millis(ms), [&order, ms]() { order.push_back(ms); });
  }
  // One PopDue far past every deadline (> slots * tick): the sweep path must still
  // deliver in deadline order, not slot order.
  EXPECT_EQ(Fire(&wheel, sim::Millis(100)), 4);
  EXPECT_EQ(order, (std::vector<int>{3, 5, 7, 11}));
}

TEST(TimerWheelTest, NextDeadlineTracksEarliestPendingEntry) {
  TimerWheel wheel(sim::Millis(1));
  EXPECT_EQ(wheel.NextDeadline(), TimerWheel::kNever);
  wheel.Schedule(0, sim::Millis(7), []() {});
  const TimerWheel::TimerId early = wheel.Schedule(0, sim::Millis(3), []() {});
  EXPECT_EQ(wheel.NextDeadline(), sim::Millis(3));
  // Cancelling the earliest entry moves the deadline to the survivor.
  EXPECT_TRUE(wheel.Cancel(early));
  EXPECT_EQ(wheel.NextDeadline(), sim::Millis(7));
  Fire(&wheel, sim::Millis(7));
  EXPECT_EQ(wheel.NextDeadline(), TimerWheel::kNever);
}

TEST(TimerWheelTest, AnchorsLazilyToANonZeroClock) {
  // CLOCK_MONOTONIC does not start at zero; the wheel anchors its cursor to the first
  // timestamp it sees instead of walking every tick since the epoch.
  TimerWheel wheel(sim::Millis(1));
  const sim::TimePoint boot = sim::Seconds(12345);
  bool fired = false;
  wheel.Schedule(boot, sim::Millis(2), [&]() { fired = true; });
  EXPECT_EQ(Fire(&wheel, boot + sim::Millis(1)), 0);
  EXPECT_EQ(Fire(&wheel, boot + sim::Millis(2)), 1);
  EXPECT_TRUE(fired);
}

TEST(SimTimerQueueTest, SchedulesOnVirtualTimeAndReportsIt) {
  sim::Simulation simulation;
  net::SimTimerQueue timers(&simulation);
  EXPECT_EQ(timers.Now(), 0);

  sim::TimePoint fired_at = -1;
  timers.Schedule(sim::Millis(5), [&]() { fired_at = timers.Now(); });
  simulation.Run();
  EXPECT_EQ(fired_at, sim::Millis(5));
  EXPECT_EQ(timers.Now(), sim::Millis(5));
}

TEST(SimTimerQueueTest, CancelTombstonesThePendingEvent) {
  sim::Simulation simulation;
  net::SimTimerQueue timers(&simulation);
  bool fired = false;
  const TimerQueue::TimerId id = timers.Schedule(sim::Millis(5), [&]() { fired = true; });
  EXPECT_TRUE(timers.Cancel(id));
  EXPECT_FALSE(timers.Cancel(id));  // already tombstoned
  simulation.Run();  // the queued event still pops, but the callback is suppressed
  EXPECT_FALSE(fired);

  // A timer that already fired cannot be cancelled.
  const TimerQueue::TimerId done = timers.Schedule(sim::Millis(1), []() {});
  simulation.Run();
  EXPECT_FALSE(timers.Cancel(done));
}

}  // namespace
}  // namespace nimbus
