// Seeded fault-injection equivalence (DESIGN.md §14.5): a FaultSchedule generated from a
// seed — heartbeat drops/delays/duplicates, a connection sever, one worker kill mid-run —
// is replayed against the same LR driver program over the deterministic simulator and over
// real loopback TCP. Both runs must detect the failure, recover from the checkpoint, and
// finish with bit-identical coefficients, per-iteration scalars, and per-worker command
// logs: the recovered computation is a pure function of (workload, schedule), not of the
// transport underneath. Seeds ride every assertion via SCOPED_TRACE so a failure names the
// script that produced it.

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "src/apps/logistic_regression.h"
#include "src/driver/cluster.h"
#include "src/driver/job.h"
#include "src/net/fault_injector.h"
#include "src/task/command.h"

namespace nimbus {
namespace {

using apps::LogisticRegressionApp;

constexpr int kWorkers = 4;
constexpr int kIterations = 8;  // one injector epoch per completed driver iteration

LogisticRegressionApp::Config SmallConfig() {
  LogisticRegressionApp::Config config;
  config.partitions = 8;
  config.reduce_groups = 4;
  config.dim = 6;
  config.rows_per_partition = 16;
  config.virtual_bytes_total = 64LL * 1000 * 1000;
  return config;
}

struct RunOutput {
  std::vector<double> coefficients;
  std::vector<double> iteration_scalars;  // completed iterations, reruns included
  std::vector<std::vector<Command>> command_logs;  // surviving workers only
  std::int64_t recoveries = 0;
};

// Replays the schedule for `seed` over `transport`. The driver loop advances the injector
// one epoch per *completed* iteration (a recovered iteration does not advance it), applies
// the epoch's structural events — kills via FailWorker, severs via SeverConnection — at
// the iteration boundary, and rewinds to the restored checkpoint marker on recovery.
// Detection knobs: the generator's default max_run (3) keeps injected silence at
// 3 * 25ms < 100ms, below even one missed-beat interval, and the miss threshold of 3
// (fail past ~300ms of silence) leaves real-clock jitter headroom under TCP.
RunOutput RunWithSchedule(TransportKind transport, std::uint64_t seed) {
  net::FaultInjector injector(net::FaultSchedule::Generate(seed, kWorkers, kIterations));

  ClusterOptions options;
  options.workers = kWorkers;
  options.partitions = 8;
  options.mode = ControlMode::kTemplates;
  options.transport = transport;
  options.enable_command_log = true;
  options.failure_detection = true;
  options.heartbeat_period = sim::Millis(25);
  options.heartbeat_timeout = sim::Millis(100);
  options.miss_threshold = 3;
  options.fault_injector = &injector;
  Cluster cluster(options);
  Job job(&cluster);

  LogisticRegressionApp app(&job, SmallConfig());
  app.Setup();

  RunOutput out;
  int iter = 0;
  while (iter < kIterations) {
    // Structural events pinned to the current epoch. A rewound loop re-enters the kill
    // epoch with the worker already dead; the liveness guard makes the re-apply a no-op.
    for (const net::FaultEvent& e : injector.PendingStructural(net::FaultKind::kKillWorker)) {
      if (cluster.worker(e.worker) != nullptr) {
        cluster.FailWorker(e.worker);
      }
    }
    for (const net::FaultEvent& e : injector.PendingStructural(net::FaultKind::kSever)) {
      cluster.SeverConnection(net::NodeAddress::Controller(),
                              net::NodeAddress::ForWorker(e.worker));
    }

    const Job::RunResult result = app.RunInnerIteration();
    if (result.recovered) {
      iter = static_cast<int>(result.resume_marker);
      continue;
    }
    out.iteration_scalars.push_back(result.FirstScalar());
    ++iter;
    injector.AdvanceEpoch();
    if (iter % 2 == 0 && iter < kIterations) {
      job.Checkpoint(static_cast<std::uint64_t>(iter));
    }
  }

  cluster.Quiesce();
  out.coefficients = app.CoeffSnapshot();
  for (WorkerId id : cluster.worker_ids()) {
    if (Worker* w = cluster.worker(id)) {
      out.command_logs.push_back(w->command_log());
    }
  }
  out.recoveries = cluster.trace().Counter("recoveries");
  return out;
}

void ExpectIdentical(const RunOutput& sim, const RunOutput& tcp) {
  // Exact equality, not tolerance: same arithmetic in the same order on both transports.
  ASSERT_EQ(sim.iteration_scalars.size(), tcp.iteration_scalars.size());
  for (std::size_t i = 0; i < sim.iteration_scalars.size(); ++i) {
    EXPECT_EQ(sim.iteration_scalars[i], tcp.iteration_scalars[i]) << "iteration " << i;
  }
  ASSERT_EQ(sim.coefficients.size(), tcp.coefficients.size());
  for (std::size_t d = 0; d < sim.coefficients.size(); ++d) {
    EXPECT_EQ(sim.coefficients[d], tcp.coefficients[d]) << "coefficient " << d;
  }
  ASSERT_EQ(sim.command_logs.size(), tcp.command_logs.size());
  for (std::size_t w = 0; w < sim.command_logs.size(); ++w) {
    ASSERT_EQ(sim.command_logs[w].size(), tcp.command_logs[w].size()) << "worker " << w;
    for (std::size_t c = 0; c < sim.command_logs[w].size(); ++c) {
      EXPECT_EQ(sim.command_logs[w][c], tcp.command_logs[w][c])
          << "worker " << w << " command " << c;
    }
  }
}

void RunSeed(std::uint64_t seed) {
  SCOPED_TRACE("fault schedule seed " + std::to_string(seed));
  const RunOutput sim = RunWithSchedule(TransportKind::kSim, seed);
  const RunOutput tcp = RunWithSchedule(TransportKind::kTcp, seed);

  // The schedule's one kill must have triggered exactly one recovery on each backend.
  EXPECT_EQ(sim.recoveries, 1);
  EXPECT_EQ(tcp.recoveries, 1);
  ASSERT_EQ(sim.command_logs.size(), static_cast<std::size_t>(kWorkers - 1));

  ExpectIdentical(sim, tcp);

  // And not merely self-consistent: the recovered run matches the model-free sequential
  // reference, like a failure-free run does.
  const std::vector<double> expected =
      LogisticRegressionApp::ReferenceInnerLoop(SmallConfig(), kIterations);
  ASSERT_EQ(expected.size(), sim.coefficients.size());
  for (std::size_t d = 0; d < expected.size(); ++d) {
    EXPECT_DOUBLE_EQ(expected[d], sim.coefficients[d]) << "coefficient " << d;
  }
}

TEST(FaultScheduleTest, GeneratorIsDeterministicAndWellFormed) {
  const net::FaultSchedule a = net::FaultSchedule::Generate(99, kWorkers, kIterations);
  const net::FaultSchedule b = net::FaultSchedule::Generate(99, kWorkers, kIterations);
  ASSERT_EQ(a.events.size(), b.events.size());
  int kills = 0;
  for (std::size_t i = 0; i < a.events.size(); ++i) {
    EXPECT_EQ(static_cast<int>(a.events[i].kind), static_cast<int>(b.events[i].kind));
    EXPECT_EQ(a.events[i].epoch, b.events[i].epoch);
    EXPECT_EQ(a.events[i].worker, b.events[i].worker);
    EXPECT_EQ(a.events[i].count, b.events[i].count);

    const net::FaultEvent& e = a.events[i];
    EXPECT_GE(e.epoch, 0);
    EXPECT_LT(e.epoch, kIterations);
    EXPECT_LT(e.worker.value(), static_cast<std::uint64_t>(kWorkers));
    EXPECT_LE(e.count, 3) << "run longer than max_run breaks the determinism argument";
    if (e.kind == net::FaultKind::kKillWorker) {
      ++kills;
      // Middle half: work exists both before the kill (a checkpoint) and after (reruns).
      EXPECT_GE(e.epoch, kIterations / 4);
      EXPECT_LT(e.epoch, kIterations - kIterations / 4);
    }
  }
  EXPECT_EQ(kills, 1);
}

TEST(FaultScheduleTest, Seed1BitIdenticalAcrossTransports) { RunSeed(1); }

TEST(FaultScheduleTest, Seed42BitIdenticalAcrossTransports) { RunSeed(42); }

TEST(FaultScheduleTest, Seed1337BitIdenticalAcrossTransports) { RunSeed(1337); }

}  // namespace
}  // namespace nimbus
