// The pipelined controller loop and worker-side parallel materialization (DESIGN.md §9).
//
// Two determinism contracts are pinned here, both `runtime`-labeled so the CI sanitizer
// jobs race them:
//  * Controller-loop lookahead (driver hints + overlapped next-block validation) must be
//    bit-identical to the serial loop: same version-map snapshots, same per-worker command
//    streams (the worker log now covers materialized instantiation groups), same scalar
//    results, same converged coefficients. Only cost accounting may differ.
//  * Worker materialization through a ThreadPoolExecutor must be bit-identical to the
//    InlineExecutor default: command builds write disjoint pre-sized slots and launches
//    stay serial, so the executor cannot change observable behavior.
// A stale or wrong hint must fall back to the serial sweep without changing results.

#include <gtest/gtest.h>

#include <map>
#include <string>
#include <utility>
#include <vector>

#include "src/apps/logistic_regression.h"
#include "src/common/rng.h"
#include "src/driver/cluster.h"
#include "src/driver/job.h"
#include "src/runtime/executor.h"

namespace nimbus {
namespace {

bool SnapshotsEqual(const VersionMap::SnapshotState& a, const VersionMap::SnapshotState& b) {
  if (a.size() != b.size()) {
    return false;
  }
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i].object != b[i].object || a[i].latest != b[i].latest ||
        a[i].held != b[i].held) {
      return false;
    }
  }
  return true;
}

apps::LogisticRegressionApp::Config SmallConfig() {
  apps::LogisticRegressionApp::Config config;
  config.partitions = 8;
  config.reduce_groups = 4;
  config.dim = 4;
  config.rows_per_partition = 8;
  config.virtual_bytes_total = 32LL * 1000 * 1000;
  return config;
}

// How the steady-state loop announces its next block (DESIGN.md §9.1).
enum class HintMode {
  kNone,       // serial controller loop: no lookahead ever schedules
  kAlternate,  // correct (current, next) pairs: every steady transition overlaps
  kWrong,      // always hints the inner block: half the hints are stale and must miss
};

// Everything one alternating inner/outer LR run observably produced, plus the lookahead
// and materialization counters the assertions below inspect.
struct LoopRun {
  std::vector<double> coeffs;
  VersionMap::SnapshotState snapshot;
  std::map<WorkerId, std::vector<Command>> logs;
  std::vector<std::pair<std::uint64_t, double>> scalars;  // (task id, value) in run order
  std::uint64_t tasks_dispatched = 0;
  std::uint64_t lookaheads_scheduled = 0;
  std::uint64_t lookahead_hits = 0;
  std::uint64_t materialized_groups = 0;
  std::uint64_t materialized_entries = 0;
  std::uint64_t build_chunks = 0;
};

// Runs bring-up plus six steady inner/outer alternations — every steady transition is a
// block change, so validation really runs (and the inner block's broadcast precondition
// really patches) on every instantiation the lookahead covers.
LoopRun RunAlternatingLr(HintMode hints, runtime::Executor* worker_executor) {
  ClusterOptions options;
  options.workers = 4;
  options.partitions = 8;
  options.mode = ControlMode::kTemplates;
  Cluster cluster(options);
  if (worker_executor != nullptr) {
    cluster.SetWorkerExecutor(worker_executor);
  }
  for (WorkerId id : cluster.worker_ids()) {
    cluster.worker(id)->EnableCommandLog();
  }
  Job job(&cluster);

  apps::LogisticRegressionApp app(&job, SmallConfig());
  app.Setup();

  LoopRun run;
  auto record = [&run](const Job::RunResult& result) {
    for (const ScalarResult& s : result.scalars) {
      run.scalars.emplace_back(s.task.value(), s.value);
    }
  };

  // Bring-up: capture, projection, worker install for both blocks (no hints yet).
  for (int i = 0; i < 3; ++i) {
    record(app.RunInnerIteration());
    record(app.RunOuterIteration());
  }

  for (int i = 0; i < 6; ++i) {
    switch (hints) {
      case HintMode::kNone:
        break;
      case HintMode::kAlternate:
        job.HintNextBlock(app.OuterBlockName());
        break;
      case HintMode::kWrong:
        job.HintNextBlock(app.InnerBlockName());
        break;
    }
    record(app.RunInnerIteration());
    if (hints != HintMode::kNone) {
      job.HintNextBlock(app.InnerBlockName());
    }
    record(app.RunOuterIteration());
  }
  job.HintNextBlock(std::string());

  run.coeffs = app.CoeffSnapshot();
  run.snapshot = cluster.controller().versions().Snapshot();
  for (WorkerId id : cluster.worker_ids()) {
    run.logs[id] = cluster.worker(id)->command_log();
    const MaterializeCounters& mc = cluster.worker(id)->materialize_counters();
    run.materialized_groups += mc.groups;
    run.materialized_entries += mc.entries;
    run.build_chunks += mc.build_chunks;
  }
  run.tasks_dispatched = cluster.controller().tasks_dispatched();
  run.lookaheads_scheduled = cluster.controller().lookaheads_scheduled();
  run.lookahead_hits = cluster.controller().lookahead_hits();
  return run;
}

void ExpectRunsEqual(const LoopRun& reference, const LoopRun& other,
                     const std::string& label) {
  ASSERT_EQ(reference.coeffs.size(), other.coeffs.size()) << label;
  for (std::size_t d = 0; d < reference.coeffs.size(); ++d) {
    EXPECT_DOUBLE_EQ(reference.coeffs[d], other.coeffs[d]) << label << " dim " << d;
  }
  EXPECT_TRUE(SnapshotsEqual(reference.snapshot, other.snapshot)) << label;
  EXPECT_EQ(reference.tasks_dispatched, other.tasks_dispatched) << label;
  ASSERT_EQ(reference.scalars.size(), other.scalars.size()) << label;
  for (std::size_t i = 0; i < reference.scalars.size(); ++i) {
    EXPECT_EQ(reference.scalars[i].first, other.scalars[i].first) << label << " scalar " << i;
    EXPECT_DOUBLE_EQ(reference.scalars[i].second, other.scalars[i].second)
        << label << " scalar " << i;
  }
  ASSERT_EQ(reference.logs.size(), other.logs.size()) << label;
  for (const auto& [worker, ref_log] : reference.logs) {
    const auto it = other.logs.find(worker);
    ASSERT_TRUE(it != other.logs.end()) << label << " worker " << worker;
    ASSERT_EQ(ref_log.size(), it->second.size()) << label << " worker " << worker;
    for (std::size_t i = 0; i < ref_log.size(); ++i) {
      EXPECT_TRUE(ref_log[i] == it->second[i])
          << label << " worker " << worker << " command " << i
          << " (id " << ref_log[i].id << " vs " << it->second[i].id << ")";
    }
  }
}

// The headline contract: the overlapped controller loop is bit-identical to the serial
// one. With correct hints every steady-state transition schedules, and all but the first
// consume (the first hinted instantiation has nothing recorded yet).
TEST(PipelinedLoopTest, LookaheadOnVsOffBitEquality) {
  const LoopRun serial = RunAlternatingLr(HintMode::kNone, nullptr);
  EXPECT_EQ(serial.lookaheads_scheduled, 0u);
  EXPECT_EQ(serial.lookahead_hits, 0u);
  ASSERT_FALSE(serial.scalars.empty());

  const LoopRun overlapped = RunAlternatingLr(HintMode::kAlternate, nullptr);
  EXPECT_GE(overlapped.lookaheads_scheduled, 11u);  // 12 hinted runs, last hint unconsumed
  EXPECT_GE(overlapped.lookahead_hits, 10u);
  EXPECT_LE(overlapped.lookahead_hits, overlapped.lookaheads_scheduled);
  ExpectRunsEqual(serial, overlapped, "lookahead");
}

// A wrong hint names a block that is not instantiated next: the stamp check must refuse
// the overlapped result (set id mismatch) and fall back to the serial sweep — results
// unchanged, fewer hits than schedules.
TEST(PipelinedLoopTest, WrongHintFallsBackToSerialSweep) {
  const LoopRun serial = RunAlternatingLr(HintMode::kNone, nullptr);
  const LoopRun wrong = RunAlternatingLr(HintMode::kWrong, nullptr);
  EXPECT_GT(wrong.lookaheads_scheduled, 0u);
  EXPECT_LT(wrong.lookahead_hits, wrong.lookaheads_scheduled);
  ExpectRunsEqual(serial, wrong, "wrong-hint");
}

// Worker-side parallel materialization: a thread pool must produce exactly the serial
// results (command builds write disjoint slots; launches stay serial). Raced under
// ASan/TSan via the runtime label. The charge model differs (parallel lanes), so this
// compares results, streams and state — not virtual times.
TEST(PipelinedLoopTest, ThreadPoolMaterializationBitIdenticalToInline) {
  const LoopRun inline_run = RunAlternatingLr(HintMode::kAlternate, nullptr);
  ASSERT_GT(inline_run.materialized_groups, 0u);
  // One lane => one build chunk per group: the inline path is the serial code path.
  EXPECT_EQ(inline_run.build_chunks, inline_run.materialized_groups);

  runtime::ThreadPoolExecutor pool(3);
  const LoopRun pooled = RunAlternatingLr(HintMode::kAlternate, &pool);
  ExpectRunsEqual(inline_run, pooled, "thread-pool");
  EXPECT_EQ(inline_run.materialized_groups, pooled.materialized_groups);
  EXPECT_EQ(inline_run.materialized_entries, pooled.materialized_entries);
  // Four lanes chunk every large-enough group: strictly more executor jobs, same output.
  EXPECT_GT(pooled.build_chunks, inline_run.build_chunks);
}

// Scheduling-change safety: edits planned between a hinted pair bump the target set's
// generation, so the consuming instantiation must reject the overlapped sweep (it ran
// against the pre-edit compiled arrays) and revalidate serially — results identical to
// the unhinted run with the same edits.
TEST(PipelinedLoopTest, EditsBetweenHintedBlocksInvalidateLookahead) {
  auto run_with_migrations = [](bool hints) {
    ClusterOptions options;
    options.workers = 4;
    options.partitions = 8;
    options.mode = ControlMode::kTemplates;
    Cluster cluster(options);
    Job job(&cluster);
    apps::LogisticRegressionApp app(&job, SmallConfig());
    app.Setup();
    for (int i = 0; i < 3; ++i) {
      app.RunInnerIteration();  // bring-up: both blocks reach the fast path
      app.RunOuterIteration();
    }
    Rng rng(1234);
    for (int i = 0; i < 4; ++i) {
      if (hints) {
        job.HintNextBlock(app.OuterBlockName());
      }
      app.RunInnerIteration();
      // Edit the hinted block AFTER its overlapped sweep was recorded: the consuming
      // instantiation carries edits and a bumped generation, so it must miss.
      cluster.controller().PlanRandomMigrations(app.OuterBlockName(), 1, &rng);
      if (hints) {
        job.HintNextBlock(app.InnerBlockName());
      }
      app.RunOuterIteration();
    }
    job.HintNextBlock(std::string());
    struct Result {
      std::vector<double> coeffs;
      VersionMap::SnapshotState snapshot;
      std::uint64_t hits;
      std::uint64_t scheduled;
    };
    return Result{app.CoeffSnapshot(), cluster.controller().versions().Snapshot(),
                  cluster.controller().lookahead_hits(),
                  cluster.controller().lookaheads_scheduled()};
  };

  const auto serial = run_with_migrations(false);
  const auto hinted = run_with_migrations(true);
  ASSERT_EQ(serial.coeffs.size(), hinted.coeffs.size());
  for (std::size_t d = 0; d < serial.coeffs.size(); ++d) {
    EXPECT_DOUBLE_EQ(serial.coeffs[d], hinted.coeffs[d]) << "dim " << d;
  }
  EXPECT_TRUE(SnapshotsEqual(serial.snapshot, hinted.snapshot));
  EXPECT_EQ(serial.hits, 0u);
  EXPECT_EQ(serial.scheduled, 0u);
  // The edited instantiations must all have missed; hits can only come from the
  // edit-free first run of each pair.
  EXPECT_LT(hinted.hits, hinted.scheduled);
}

// The driver-facing surface: hints are sticky until changed, PeekNextBlock exposes the
// announcement, and RunBlockSequence hints every (current, next) pair then clears.
TEST(PipelinedLoopTest, JobHintApiAndRunBlockSequence) {
  ClusterOptions options;
  options.workers = 4;
  options.partitions = 8;
  options.mode = ControlMode::kTemplates;
  Cluster cluster(options);
  Job job(&cluster);
  apps::LogisticRegressionApp app(&job, SmallConfig());
  app.Setup();

  EXPECT_EQ(job.PeekNextBlock(), "");
  job.HintNextBlock("some_block");
  EXPECT_EQ(job.PeekNextBlock(), "some_block");
  job.HintNextBlock(std::string());
  EXPECT_EQ(job.PeekNextBlock(), "");

  // Bring both blocks to the fast path, then run a sequence: the controller must see the
  // successor of every element (3 overlappable transitions in a 4-element sequence).
  for (int i = 0; i < 3; ++i) {
    app.RunInnerIteration();
    app.RunOuterIteration();
  }
  const std::uint64_t scheduled_before = cluster.controller().lookaheads_scheduled();
  const Job::RunResult last = job.RunBlockSequence({{app.InnerBlockName(), {}},
                                                    {app.OuterBlockName(), {}},
                                                    {app.InnerBlockName(), {}},
                                                    {app.OuterBlockName(), {}}});
  EXPECT_FALSE(last.recovered);
  EXPECT_EQ(job.PeekNextBlock(), "");
  EXPECT_GE(cluster.controller().lookaheads_scheduled() - scheduled_before, 3u);
}

}  // namespace
}  // namespace nimbus
