// The sharded instantiation engine (DESIGN.md §7):
//  * ShardedVersionMap must be observationally identical to the flat VersionMap at any
//    shard count (randomized cross-check), and must enforce shard ownership;
//  * InlineExecutor and ThreadPoolExecutor must produce identical version-map final states
//    and identical worker message streams for the same instantiation sequence (the
//    determinism contract that lets the simulator keep the inline executor);
//  * the engine's stages must match the flat TemplateManager path they parallelize.

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <vector>

#include "src/common/rng.h"
#include "src/core/template_manager.h"
#include "src/core/worker_template.h"
#include "src/data/object_directory.h"
#include "src/data/version_map.h"
#include "src/driver/cluster.h"
#include "src/driver/job.h"
#include "src/apps/logistic_regression.h"
#include "src/runtime/executor.h"
#include "src/runtime/instantiation_pipeline.h"
#include "src/runtime/shard_audit.h"
#include "src/runtime/sharded_version_map.h"

namespace nimbus::runtime {
namespace {

// -----------------------------------------------------------------------------------------
// ShardedVersionMap vs flat VersionMap
// -----------------------------------------------------------------------------------------

bool SnapshotsEqual(const VersionMap::SnapshotState& a, const VersionMap::SnapshotState& b) {
  if (a.size() != b.size()) {
    return false;
  }
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i].object != b[i].object || a[i].latest != b[i].latest ||
        a[i].held != b[i].held) {
      return false;
    }
  }
  return true;
}

class ShardedVersionMapTest : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(ShardedVersionMapTest, RandomizedCrossCheckAgainstFlat) {
  const std::uint32_t shards = GetParam();
  constexpr int kObjects = 57;
  constexpr int kWorkers = 7;
  constexpr int kOps = 4000;

  // Two identically seeded maps: ops go to `flat` directly and to `mirror` through the
  // owning shard view. Identical call sequences give identical dense id spaces.
  VersionMap flat;
  VersionMap mirror;
  for (int o = 0; o < kObjects; ++o) {
    const LogicalObjectId object(static_cast<std::uint64_t>(o));
    const WorkerId home(static_cast<std::uint64_t>(o % kWorkers));
    flat.CreateObject(object, home);
    mirror.CreateObject(object, home);
    for (int w = 0; w < kWorkers; ++w) {
      flat.InternWorker(WorkerId(static_cast<std::uint64_t>(w)));
      mirror.InternWorker(WorkerId(static_cast<std::uint64_t>(w)));
    }
  }
  ShardedVersionMap sharded(&mirror, shards);

  Rng rng(20260729 + shards);
  for (int i = 0; i < kOps; ++i) {
    const auto object = static_cast<DenseIndex>(rng.NextBounded(kObjects));
    const auto worker = static_cast<DenseIndex>(rng.NextBounded(kWorkers));
    ShardedVersionMap::Shard shard = sharded.shard(sharded.ShardOf(object));
    // One serial ownership window per op (write covers the read cases too): satisfies the
    // shard capability and keeps this serial test audit-clean in audit builds.
    ShardWriteScope window(&shard, audit::JobKind::kSerial, /*job=*/0);
    switch (rng.NextBounded(5)) {
      case 0: {
        const auto count = static_cast<std::uint32_t>(1 + rng.NextBounded(3));
        const Version vf = flat.AdvanceVersionsDense(object, worker, count);
        const Version vs = shard.AdvanceVersionsDense(object, worker, count);
        ASSERT_EQ(vf, vs);
        break;
      }
      case 1:
        flat.RecordCopyToLatestDense(object, worker);
        shard.RecordCopyToLatestDense(object, worker);
        break;
      case 2:
        ASSERT_EQ(flat.WorkerHasLatestDense(object, worker),
                  shard.WorkerHasLatestDense(object, worker));
        break;
      case 3:
        ASSERT_EQ(flat.AnyLatestHolderDense(object), shard.AnyLatestHolderDense(object));
        break;
      default:
        ASSERT_EQ(flat.ExistsDense(object), shard.ExistsDense(object));
        break;
    }
  }
  EXPECT_TRUE(SnapshotsEqual(flat.Snapshot(), mirror.Snapshot()));
  EXPECT_EQ(flat.instance_count(), mirror.instance_count());
}

INSTANTIATE_TEST_SUITE_P(Shards, ShardedVersionMapTest, ::testing::Values(1u, 2u, 8u));

TEST(ShardedVersionMapOwnershipTest, ForeignIndexAborts) {
  VersionMap map;
  map.CreateObject(LogicalObjectId(0), WorkerId(0));
  map.CreateObject(LogicalObjectId(1), WorkerId(0));
  ShardedVersionMap sharded(&map, 2);
  // Dense index 1 belongs to shard 1; shard 0 touching it violates the single-writer
  // invariant and must die loudly — even from inside a legitimate ownership window on
  // shard 0 (the window authorizes the shard, not foreign indices).
  EXPECT_DEATH(
      {
        ShardedVersionMap::Shard shard = sharded.shard(0);
        ShardReadScope window(&shard, audit::JobKind::kSerial, /*job=*/0);
        static_cast<void>(shard.ExistsDense(1));
      },
      "foreign dense index");
}

TEST(ShardedVersionMapOwnershipTest, ShardCountMustBePowerOfTwo) {
  VersionMap map;
  EXPECT_DEATH(ShardedVersionMap(&map, 3), "power of two");
}

TEST(ShardedObjectDirectoryTest, HashPartitionCoversEveryObjectExactlyOnce) {
  ObjectDirectory directory;
  directory.DefineVariable("a", 13, 100);
  directory.DefineVariable("b", 8, 50);
  const ShardedObjectDirectory sharded(&directory, 4);
  std::size_t covered = 0;
  for (std::uint32_t s = 0; s < sharded.shard_count(); ++s) {
    const auto shard = sharded.shard(s);
    covered += shard.owned_count();
    DirectoryReadScope window(&shard, audit::JobKind::kSerial, /*job=*/s);
    for (DenseIndex i = 0; i < directory.object_count(); ++i) {
      if (sharded.ShardOf(i) == s) {
        EXPECT_EQ(shard.ObjectAt(i).id.value(), i);
      }
    }
  }
  EXPECT_EQ(covered, directory.object_count());
}

// -----------------------------------------------------------------------------------------
// Executors
// -----------------------------------------------------------------------------------------

TEST(ExecutorTest, ThreadPoolRunsEveryJobExactlyOnce) {
  ThreadPoolExecutor pool(3);
  for (int round = 0; round < 50; ++round) {
    const std::size_t count = static_cast<std::size_t>(round % 9);  // includes 0 and 1
    std::vector<std::atomic<int>> hits(count);
    for (auto& h : hits) {
      h.store(0);
    }
    pool.Run(count, [&](std::size_t i) { hits[i].fetch_add(1); });
    for (std::size_t i = 0; i < count; ++i) {
      EXPECT_EQ(hits[i].load(), 1) << "job " << i << " round " << round;
    }
  }
  EXPECT_GT(pool.counters().jobs_run, 0u);
  EXPECT_GT(pool.counters().batches, 0u);
}

TEST(ExecutorTest, InlineRunsInIndexOrder) {
  InlineExecutor inline_exec;
  std::vector<std::size_t> order;
  inline_exec.Run(5, [&](std::size_t i) { order.push_back(i); });
  EXPECT_EQ(order, (std::vector<std::size_t>{0, 1, 2, 3, 4}));
  EXPECT_EQ(inline_exec.counters().jobs_run, 5u);
  EXPECT_EQ(inline_exec.counters().batches, 1u);
}

// -----------------------------------------------------------------------------------------
// Engine equivalence: executors, shard counts, and the flat TemplateManager path
// -----------------------------------------------------------------------------------------

// A small LR-shaped block (P map tasks reading a broadcast object, G reduces, 1 update)
// captured into a TemplateManager, mirroring the Table 1-3 micro benchmarks.
struct MicroBlock {
  core::TemplateManager manager;
  TemplateId template_id;
  core::Assignment assignment;
  std::vector<LogicalObjectId> tdata, grad, gpartial;
  LogicalObjectId coeff;
};

std::unique_ptr<MicroBlock> BuildMicroBlock(int partitions, int workers) {
  auto block = std::make_unique<MicroBlock>();
  IdAllocator<LogicalObjectId> objects;
  block->coeff = objects.Next();
  for (int q = 0; q < partitions; ++q) {
    block->tdata.push_back(objects.Next());
    block->grad.push_back(objects.Next());
  }
  for (int g = 0; g < workers; ++g) {
    block->gpartial.push_back(objects.Next());
  }
  std::vector<WorkerId> ids;
  for (int w = 0; w < workers; ++w) {
    ids.push_back(WorkerId(static_cast<std::uint64_t>(w)));
  }
  block->assignment = core::Assignment::RoundRobin(partitions, ids);

  block->template_id = block->manager.BeginCapture("micro_lr");
  for (int q = 0; q < partitions; ++q) {
    block->manager.CaptureTask(
        FunctionId(0), {block->tdata[static_cast<std::size_t>(q)], block->coeff},
        {block->grad[static_cast<std::size_t>(q)]}, q, sim::Millis(4), false, {});
  }
  for (int g = 0; g < workers; ++g) {
    std::vector<LogicalObjectId> reads;
    for (int q = g; q < partitions; q += workers) {
      reads.push_back(block->grad[static_cast<std::size_t>(q)]);
    }
    block->manager.CaptureTask(FunctionId(1), std::move(reads),
                               {block->gpartial[static_cast<std::size_t>(g)]}, g,
                               sim::Micros(200), false, {});
  }
  {
    std::vector<LogicalObjectId> reads = block->gpartial;
    reads.push_back(block->coeff);
    block->manager.CaptureTask(FunctionId(2), std::move(reads), {block->coeff}, 0,
                               sim::Micros(300), true, {});
  }
  block->manager.FinishCapture();
  return block;
}

void SeedVersions(const MicroBlock& block, VersionMap* versions) {
  for (std::size_t q = 0; q < block.tdata.size(); ++q) {
    versions->CreateObject(block.tdata[q], block.assignment.WorkerFor(static_cast<int>(q)));
    versions->CreateObject(block.grad[q], block.assignment.WorkerFor(static_cast<int>(q)));
  }
  for (std::size_t g = 0; g < block.gpartial.size(); ++g) {
    versions->CreateObject(block.gpartial[g],
                           block.assignment.WorkerFor(static_cast<int>(g)));
  }
  versions->CreateObject(block.coeff, block.assignment.WorkerFor(0));
  for (WorkerId w : block.assignment.Workers()) {
    versions->RecordCopyToLatest(block.coeff, w);
  }
}

struct RunTrace {
  VersionMap::SnapshotState final_state;
  std::vector<std::vector<core::PatchDirective>> patches;  // per instantiation
  std::vector<std::vector<WorkerMessage>> messages;        // per instantiation
};

bool DirectivesEqual(const std::vector<core::PatchDirective>& a,
                     const std::vector<core::PatchDirective>& b) {
  if (a.size() != b.size()) {
    return false;
  }
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i].object != b[i].object || a[i].src != b[i].src || a[i].dst != b[i].dst ||
        a[i].bytes != b[i].bytes) {
      return false;
    }
  }
  return true;
}

bool MessagesEqual(const std::vector<WorkerMessage>& a, const std::vector<WorkerMessage>& b) {
  if (a.size() != b.size()) {
    return false;
  }
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i].worker != b[i].worker || a[i].half_index != b[i].half_index ||
        a[i].entry_count != b[i].entry_count || a[i].params != b[i].params ||
        a[i].wire_size != b[i].wire_size) {
      return false;
    }
    const bool a_edits = a[i].edits != nullptr && !a[i].edits->empty();
    const bool b_edits = b[i].edits != nullptr && !b[i].edits->empty();
    if (a_edits != b_edits) {
      return false;
    }
  }
  return true;
}

// Runs `iters` engine-driven instantiations, perturbing the broadcast object's residency
// between them so validation produces real patches, and routing some params.
RunTrace RunEngine(Executor* executor, std::uint32_t shards, int iters) {
  auto block = BuildMicroBlock(24, 4);
  core::WorkerTemplateSet set = core::ProjectBlock(
      *block->manager.Find(block->template_id), block->assignment, WorkerTemplateId(0),
      [](LogicalObjectId) { return 80; });
  VersionMap versions;
  SeedVersions(*block, &versions);

  InstantiationPipeline pipeline(executor, shards);
  RunTrace trace;
  ParamList params;
  params.emplace_back(0, ParameterBlob{1, 2, 3});
  params.emplace_back(5, ParameterBlob{4});
  params.emplace_back(static_cast<std::int32_t>(set.entry_meta().size() - 1),
                      ParameterBlob{7, 7});
  for (int i = 0; i < iters; ++i) {
    if (i % 2 == 1) {
      // Invalidate the broadcast object everywhere but one rotating writer.
      versions.RecordWrite(block->coeff,
                           block->assignment.WorkerFor(
                               i % block->assignment.partition_count()));
    }
    InstantiationOutcome outcome =
        pipeline.Run(set, &versions, params, /*edits=*/nullptr,
                     [&](std::vector<core::PatchDirective> required, bool* hit) {
                       return block->manager.ResolvePatchFrom(set, /*prev=*/7, versions,
                                                              std::move(required), hit);
                     });
    trace.patches.push_back(outcome.required);
    trace.messages.push_back(std::move(outcome.messages));
  }
  trace.final_state = versions.Snapshot();
  return trace;
}

TEST(InstantiationEngineTest, InlineAndThreadPoolProduceIdenticalResults) {
  InlineExecutor inline_exec;
  const RunTrace reference = RunEngine(&inline_exec, 1, 6);
  ASSERT_FALSE(reference.final_state.empty());
  // At least one instantiation must have produced a real patch for this test to bite.
  bool any_patch = false;
  for (const auto& p : reference.patches) {
    any_patch |= !p.empty();
  }
  ASSERT_TRUE(any_patch);

  for (std::uint32_t shards : {1u, 2u, 8u}) {
    InlineExecutor il;
    ThreadPoolExecutor pool(4);
    for (Executor* executor : std::initializer_list<Executor*>{&il, &pool}) {
      const RunTrace trace = RunEngine(executor, shards, 6);
      EXPECT_TRUE(SnapshotsEqual(reference.final_state, trace.final_state))
          << executor->name() << " shards=" << shards;
      ASSERT_EQ(reference.patches.size(), trace.patches.size());
      for (std::size_t i = 0; i < reference.patches.size(); ++i) {
        EXPECT_TRUE(DirectivesEqual(reference.patches[i], trace.patches[i]))
            << executor->name() << " shards=" << shards << " iter " << i;
        EXPECT_TRUE(MessagesEqual(reference.messages[i], trace.messages[i]))
            << executor->name() << " shards=" << shards << " iter " << i;
      }
    }
  }
}

TEST(InstantiationEngineTest, StagesMatchFlatTemplateManagerPath) {
  auto block = BuildMicroBlock(16, 4);
  core::WorkerTemplateSet set = core::ProjectBlock(
      *block->manager.Find(block->template_id), block->assignment, WorkerTemplateId(0),
      [](LogicalObjectId) { return 80; });

  VersionMap flat_map;
  SeedVersions(*block, &flat_map);
  VersionMap engine_map = flat_map;  // forks the id space (fresh uid)

  // Perturb both identically so validation fails somewhere.
  flat_map.RecordWrite(block->coeff, block->assignment.WorkerFor(1));
  engine_map.RecordWrite(block->coeff, block->assignment.WorkerFor(1));

  InlineExecutor inline_exec;
  InstantiationPipeline pipeline(&inline_exec, 4);

  const auto flat_required = block->manager.Validate(set, flat_map);
  const auto engine_required = pipeline.Validate(set, engine_map);
  ASSERT_FALSE(flat_required.empty());
  EXPECT_TRUE(DirectivesEqual(flat_required, engine_required));

  core::Patch patch;
  patch.directives = flat_required;
  block->manager.ApplyInstantiationEffects(set, patch, &flat_map);
  pipeline.ApplyEffects(set, patch, &engine_map);
  EXPECT_TRUE(SnapshotsEqual(flat_map.Snapshot(), engine_map.Snapshot()));

  const ShardCounters& counters = pipeline.shard_counters();
  EXPECT_EQ(counters.validate_batches, 1u);
  EXPECT_EQ(counters.apply_batches, 1u);
  std::uint64_t checked = 0;
  std::uint64_t failures = 0;
  for (std::uint32_t s = 0; s < 4; ++s) {
    checked += counters.preconditions_checked[s];
    failures += counters.validation_failures[s];
  }
  EXPECT_GT(checked, 0u);
  EXPECT_EQ(failures, flat_required.size());
}

TEST(InstantiationEngineTest, OverlappedNextBlockValidationMatchesSequential) {
  auto block = BuildMicroBlock(16, 4);
  core::WorkerTemplateSet set_a = core::ProjectBlock(
      *block->manager.Find(block->template_id), block->assignment, WorkerTemplateId(0),
      [](LogicalObjectId) { return 80; });
  core::WorkerTemplateSet set_b = core::ProjectBlock(
      *block->manager.Find(block->template_id), block->assignment, WorkerTemplateId(1),
      [](LogicalObjectId) { return 80; });

  VersionMap versions;
  SeedVersions(*block, &versions);
  versions.RecordWrite(block->coeff, block->assignment.WorkerFor(2));

  InlineExecutor inline_exec;
  InstantiationPipeline pipeline(&inline_exec, 2);
  InstantiationOutcome outcome =
      pipeline.Run(set_a, &versions, {}, nullptr, /*resolve_patch=*/nullptr, &set_b);

  // The overlapped validation of block B must equal validating B after A's effects.
  const auto sequential = pipeline.Validate(set_b, versions);
  EXPECT_TRUE(DirectivesEqual(outcome.next_required, sequential));
}

// -----------------------------------------------------------------------------------------
// Shard-plan cache: revalidated by set generation, rebuilt on edits
// -----------------------------------------------------------------------------------------

TEST(InstantiationEngineTest, ShardPlanRebuiltWhenSetGenerationBumps) {
  auto block = BuildMicroBlock(32, 4);
  core::WorkerTemplateSet set = core::ProjectBlock(
      *block->manager.Find(block->template_id), block->assignment, WorkerTemplateId(0),
      [](LogicalObjectId) { return 80; });
  VersionMap versions;
  SeedVersions(*block, &versions);

  InlineExecutor inline_exec;
  InstantiationPipeline pipeline(&inline_exec, 2);
  pipeline.Validate(set, versions);
  EXPECT_EQ(pipeline.shard_counters().plan_builds, 1u);  // cold build
  pipeline.Validate(set, versions);
  pipeline.Validate(set, versions);
  EXPECT_EQ(pipeline.shard_counters().plan_builds, 1u);  // steady state: reuse only
  EXPECT_GE(pipeline.shard_counters().plan_reuses, 2u);

  // A set edit bumps the generation: the cached plan must not survive it (it could be
  // missing the new precondition's shard entry).
  set.AddPrecondition(block->coeff, block->assignment.WorkerFor(1));
  pipeline.Validate(set, versions);
  EXPECT_EQ(pipeline.shard_counters().plan_builds, 2u);
  pipeline.Validate(set, versions);
  EXPECT_EQ(pipeline.shard_counters().plan_builds, 2u);
}

// -----------------------------------------------------------------------------------------
// Batched central dispatch: per-worker command batches (DESIGN.md §8)
// -----------------------------------------------------------------------------------------

// Command batches must be executor- and shard-count-invariant (the batch chunks write
// disjoint slots; this is also the sanitizer-raced coverage for the assembly stage).
TEST(InstantiationEngineTest, CommandBatchesIdenticalAcrossExecutorsAndShards) {
  auto block = BuildMicroBlock(64, 8);
  core::WorkerTemplateSet set = core::ProjectBlock(
      *block->manager.Find(block->template_id), block->assignment, WorkerTemplateId(0),
      [](LogicalObjectId) { return 80; });

  ParamList params;
  params.emplace_back(3, ParameterBlob{1, 2, 3});
  params.emplace_back(17, ParameterBlob{9});

  std::vector<CommandId> bases(set.halves().size(), CommandId::Invalid());
  std::uint64_t next = 1000;
  for (std::size_t h = 0; h < set.halves().size(); ++h) {
    if (!set.halves()[h].entries.empty()) {
      bases[h] = CommandId(next);
      next += set.halves()[h].entries.size();
    }
  }

  InlineExecutor inline_exec;
  InstantiationPipeline reference_pipeline(&inline_exec, 1);
  const std::vector<CommandBatch> reference = reference_pipeline.AssembleCommandBatches(
      set, params, /*group_seq=*/7, TaskId(500), bases);
  ASSERT_FALSE(reference.empty());
  std::size_t reference_tasks = 0;
  for (const CommandBatch& b : reference) {
    reference_tasks += b.task_count;
  }
  EXPECT_EQ(reference_tasks, set.entry_meta().size());

  ThreadPoolExecutor pool(4);
  for (std::uint32_t shards : {2u, 8u}) {
    InstantiationPipeline pipeline(&pool, shards);
    const std::vector<CommandBatch> got =
        pipeline.AssembleCommandBatches(set, params, /*group_seq=*/7, TaskId(500), bases);
    ASSERT_EQ(reference.size(), got.size()) << "shards=" << shards;
    for (std::size_t i = 0; i < reference.size(); ++i) {
      EXPECT_EQ(reference[i].worker, got[i].worker);
      EXPECT_EQ(reference[i].wire_size, got[i].wire_size);
      EXPECT_EQ(reference[i].task_count, got[i].task_count);
      ASSERT_EQ(reference[i].commands.size(), got[i].commands.size());
      for (std::size_t c = 0; c < reference[i].commands.size(); ++c) {
        EXPECT_TRUE(reference[i].commands[c] == got[i].commands[c])
            << "shards=" << shards << " batch " << i << " command " << c;
      }
    }
  }
}

// -----------------------------------------------------------------------------------------
// Controller-level invariance: shard count must not change simulation results
// -----------------------------------------------------------------------------------------

std::vector<double> RunLr(std::uint32_t shards) {
  // Declared before the cluster: the controller's pipeline borrows this executor, so it
  // must be destroyed after the cluster.
  InlineExecutor inline_exec;
  ClusterOptions options;
  options.workers = 4;
  options.partitions = 8;
  options.mode = ControlMode::kTemplates;
  Cluster cluster(options);
  Job job(&cluster);

  apps::LogisticRegressionApp::Config config;
  config.partitions = 8;
  config.reduce_groups = 4;
  config.dim = 6;
  config.rows_per_partition = 16;
  config.virtual_bytes_total = 64LL * 1000 * 1000;
  apps::LogisticRegressionApp app(&job, config);

  if (shards != 1) {
    cluster.controller().instantiation_pipeline().Configure(&inline_exec, shards);
  }
  app.Setup();
  app.RunInnerLoop(6);
  return app.CoeffSnapshot();
}

TEST(InstantiationEngineTest, ControllerResultsInvariantUnderShardCount) {
  const std::vector<double> reference = RunLr(1);
  for (std::uint32_t shards : {2u, 4u}) {
    const std::vector<double> sharded = RunLr(shards);
    ASSERT_EQ(reference.size(), sharded.size());
    for (std::size_t d = 0; d < reference.size(); ++d) {
      EXPECT_DOUBLE_EQ(reference[d], sharded[d]) << "shards=" << shards << " dim " << d;
    }
  }
}

}  // namespace
}  // namespace nimbus::runtime
