// Serialized command batches (DESIGN.md §10).
//
// The serialized central path ships each worker one pre-encoded wire buffer produced from
// the engine's cached template encoding by memcpy + header patch + in-place parameter
// patch. Cost accounting and wire bytes change; the decoded command streams, the
// version-map state, and the computed results must NOT. These tests pin that equivalence
// against both the struct-batched and the per-task dispatcher, at 1/2/4 engine shards,
// under the InlineExecutor and a ThreadPoolExecutor, and cover the serialized-plan cache
// (stamped by set edit generation; rebuilt plan-wide on edits).

#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/apps/logistic_regression.h"
#include "src/core/template_manager.h"
#include "src/driver/cluster.h"
#include "src/driver/job.h"
#include "src/runtime/executor.h"
#include "src/runtime/instantiation_pipeline.h"
#include "src/task/wire.h"

namespace nimbus {
namespace {

using runtime::CommandBatch;
using runtime::InlineExecutor;
using runtime::InstantiationPipeline;
using runtime::ParamList;
using runtime::SerializedBatch;
using runtime::ThreadPoolExecutor;

// -----------------------------------------------------------------------------------------
// Engine-level equivalence: serialized batches decode to exactly the struct batches
// -----------------------------------------------------------------------------------------

// The LR-shaped micro block of runtime_test.cc, with cached per-task parameters so the
// in-place patch path (same-size overrides) is exercised alongside the splice path.
struct MicroBlock {
  core::TemplateManager manager;
  TemplateId template_id;
  core::Assignment assignment;
  std::vector<LogicalObjectId> tdata, grad, gpartial;
  LogicalObjectId coeff;
};

std::unique_ptr<MicroBlock> BuildMicroBlock(int partitions, int workers) {
  auto block = std::make_unique<MicroBlock>();
  IdAllocator<LogicalObjectId> objects;
  block->coeff = objects.Next();
  for (int q = 0; q < partitions; ++q) {
    block->tdata.push_back(objects.Next());
    block->grad.push_back(objects.Next());
  }
  for (int g = 0; g < workers; ++g) {
    block->gpartial.push_back(objects.Next());
  }
  std::vector<WorkerId> ids;
  for (int w = 0; w < workers; ++w) {
    ids.push_back(WorkerId(static_cast<std::uint64_t>(w)));
  }
  block->assignment = core::Assignment::RoundRobin(partitions, ids);

  block->template_id = block->manager.BeginCapture("micro_lr");
  for (int q = 0; q < partitions; ++q) {
    block->manager.CaptureTask(
        FunctionId(0), {block->tdata[static_cast<std::size_t>(q)], block->coeff},
        {block->grad[static_cast<std::size_t>(q)]}, q, sim::Millis(4), false,
        ParameterBlob{1, 2, 3, 4});  // cached params: the in-place patch target
  }
  for (int g = 0; g < workers; ++g) {
    std::vector<LogicalObjectId> reads;
    for (int q = g; q < partitions; q += workers) {
      reads.push_back(block->grad[static_cast<std::size_t>(q)]);
    }
    block->manager.CaptureTask(FunctionId(1), std::move(reads),
                               {block->gpartial[static_cast<std::size_t>(g)]}, g,
                               sim::Micros(200), false, {});
  }
  {
    std::vector<LogicalObjectId> reads = block->gpartial;
    reads.push_back(block->coeff);
    block->manager.CaptureTask(FunctionId(2), std::move(reads), {block->coeff}, 0,
                               sim::Micros(300), true, {});
  }
  block->manager.FinishCapture();
  return block;
}

std::vector<CommandId> AllocateBases(const core::WorkerTemplateSet& set,
                                     std::uint64_t first) {
  std::vector<CommandId> bases(set.halves().size(), CommandId::Invalid());
  std::uint64_t next = first;
  for (std::size_t h = 0; h < set.halves().size(); ++h) {
    if (!set.halves()[h].entries.empty()) {
      bases[h] = CommandId(next);
      next += set.halves()[h].entries.size();
    }
  }
  return bases;
}

void ExpectSerializedDecodesToStruct(const std::vector<CommandBatch>& structs,
                                     const std::vector<SerializedBatch>& serialized,
                                     std::uint64_t group_seq, const std::string& label) {
  ASSERT_EQ(structs.size(), serialized.size()) << label;
  for (std::size_t i = 0; i < structs.size(); ++i) {
    EXPECT_EQ(structs[i].worker, serialized[i].worker) << label;
    EXPECT_EQ(structs[i].half_index, serialized[i].half_index) << label;
    EXPECT_EQ(structs[i].task_count, serialized[i].task_count) << label;
    const wire::DecodedBatch decoded = wire::DecodeBatch(serialized[i].bytes);
    EXPECT_EQ(decoded.header.group_seq, group_seq) << label;
    ASSERT_EQ(decoded.commands.size(), structs[i].commands.size()) << label;
    for (std::size_t c = 0; c < decoded.commands.size(); ++c) {
      EXPECT_TRUE(decoded.commands[c] == structs[i].commands[c])
          << label << " batch " << i << " command " << c;
    }
  }
}

// The headline engine contract: decoding a serialized batch yields exactly the command
// stream of the struct batch for the same arguments — same-size in-place patches, splices,
// and cache reuse included — under every executor and shard count.
TEST(SerializedBatchTest, DecodedBatchesBitIdenticalToStructBatches) {
  auto block = BuildMicroBlock(64, 8);
  core::WorkerTemplateSet set = core::ProjectBlock(
      *block->manager.Find(block->template_id), block->assignment, WorkerTemplateId(0),
      [](LogicalObjectId) { return 80; });

  ParamList params;
  params.emplace_back(3, ParameterBlob{9, 8, 7, 6});  // same size as cached: in-place
  params.emplace_back(17, ParameterBlob{5});          // size change: splice
  ParamList no_params;

  InlineExecutor inline_exec;
  ThreadPoolExecutor pool(4);
  for (std::uint32_t shards : {1u, 2u, 4u}) {
    for (runtime::Executor* executor :
         std::initializer_list<runtime::Executor*>{&inline_exec, &pool}) {
      InstantiationPipeline pipeline(executor, shards);
      // Three instantiations through one pipeline: cold encode, warm reuse with patches,
      // warm reuse with no overrides (pure memcpy replay).
      std::uint64_t seq = 7;
      std::uint64_t first_base = 1'000;
      for (const ParamList* p :
           std::initializer_list<const ParamList*>{&params, &params, &no_params}) {
        const std::string label = std::string(executor->name()) +
                                  " shards=" + std::to_string(shards) +
                                  " seq=" + std::to_string(seq);
        const std::vector<CommandId> bases = AllocateBases(set, first_base);
        const std::vector<CommandBatch> structs =
            pipeline.AssembleCommandBatches(set, *p, seq, TaskId(500), bases);
        const std::vector<SerializedBatch> serialized =
            pipeline.AssembleSerializedBatches(set, *p, seq, TaskId(500), bases);
        ASSERT_FALSE(serialized.empty()) << label;
        ExpectSerializedDecodesToStruct(structs, serialized, seq, label);
        ++seq;
        first_base += set.entry_meta().size() * 2;
      }
      const SerializedBatchCounters& counters = pipeline.serialized_counters();
      EXPECT_GT(counters.half_encodes, 0u) << shards;
      EXPECT_EQ(counters.half_reuses, counters.half_encodes * 2) << shards;
      EXPECT_GT(counters.params_patched, 0u) << shards;
      EXPECT_GT(counters.splices, 0u) << shards;
    }
  }
}

TEST(SerializedBatchTest, SerializedPlanRebuiltWhenSetGenerationBumps) {
  auto block = BuildMicroBlock(16, 4);
  core::WorkerTemplateSet set = core::ProjectBlock(
      *block->manager.Find(block->template_id), block->assignment, WorkerTemplateId(0),
      [](LogicalObjectId) { return 80; });

  InlineExecutor inline_exec;
  InstantiationPipeline pipeline(&inline_exec, 1);
  const std::vector<CommandId> bases = AllocateBases(set, 100);
  pipeline.AssembleSerializedBatches(set, {}, 1, TaskId(0), bases);
  const std::uint64_t cold = pipeline.serialized_counters().half_encodes;
  EXPECT_GT(cold, 0u);
  pipeline.AssembleSerializedBatches(set, {}, 2, TaskId(0), bases);
  EXPECT_EQ(pipeline.serialized_counters().half_encodes, cold);  // steady state: reuse

  // Any set edit bumps the generation; the cached bytes could describe entries that no
  // longer exist, so the whole plan re-encodes.
  set.AddPrecondition(block->coeff, block->assignment.WorkerFor(1));
  pipeline.AssembleSerializedBatches(set, {}, 3, TaskId(0), bases);
  EXPECT_EQ(pipeline.serialized_counters().half_encodes, cold * 2);
  pipeline.AssembleSerializedBatches(set, {}, 4, TaskId(0), bases);
  EXPECT_EQ(pipeline.serialized_counters().half_encodes, cold * 2);
}

// -----------------------------------------------------------------------------------------
// Cluster-level equivalence: the serialized central path end to end
// -----------------------------------------------------------------------------------------

bool SnapshotsEqual(const VersionMap::SnapshotState& a, const VersionMap::SnapshotState& b) {
  if (a.size() != b.size()) {
    return false;
  }
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i].object != b[i].object || a[i].latest != b[i].latest ||
        a[i].held != b[i].held) {
      return false;
    }
  }
  return true;
}

enum class DispatchMode { kPerTask, kStructBatched, kSerialized };

struct CentralRun {
  std::vector<double> coeffs;
  VersionMap::SnapshotState snapshot;
  std::map<WorkerId, std::vector<Command>> logs;
  std::uint64_t tasks_dispatched = 0;
  SerializedBatchCounters serialized;
  NetworkCounters network;
};

CentralRun RunLrCentral(DispatchMode mode, std::uint32_t shards, bool threaded) {
  // Declared before the cluster: the controller's pipeline borrows these executors.
  InlineExecutor inline_exec;
  ThreadPoolExecutor pool(3);
  ClusterOptions options;
  options.workers = 4;
  options.partitions = 8;
  options.mode = ControlMode::kCentralOnly;
  Cluster cluster(options);
  cluster.controller().set_central_batching(mode != DispatchMode::kPerTask);
  cluster.controller().set_serialized_batching(mode == DispatchMode::kSerialized);
  if (shards != 1 || threaded) {
    runtime::Executor* executor = threaded ? static_cast<runtime::Executor*>(&pool)
                                           : static_cast<runtime::Executor*>(&inline_exec);
    cluster.controller().instantiation_pipeline().Configure(executor, shards);
  }
  for (WorkerId id : cluster.worker_ids()) {
    cluster.worker(id)->EnableCommandLog();
  }
  Job job(&cluster);

  apps::LogisticRegressionApp::Config config;
  config.partitions = 8;
  config.reduce_groups = 4;
  config.dim = 6;
  config.rows_per_partition = 16;
  config.virtual_bytes_total = 64LL * 1000 * 1000;
  apps::LogisticRegressionApp app(&job, config);
  app.Setup();
  app.RunInnerLoop(4);
  app.RunOuterIteration();  // a second distinct stage shape through the plan caches
  app.RunInnerLoop(2);

  CentralRun run;
  run.coeffs = app.CoeffSnapshot();
  run.snapshot = cluster.controller().versions().Snapshot();
  for (WorkerId id : cluster.worker_ids()) {
    run.logs[id] = cluster.worker(id)->command_log();
  }
  run.tasks_dispatched = cluster.controller().tasks_dispatched();
  run.serialized = cluster.controller().instantiation_pipeline().serialized_counters();
  run.network = cluster.network().counters();
  return run;
}

void ExpectRunsEqual(const CentralRun& reference, const CentralRun& other,
                     const std::string& label) {
  ASSERT_EQ(reference.coeffs.size(), other.coeffs.size()) << label;
  for (std::size_t d = 0; d < reference.coeffs.size(); ++d) {
    EXPECT_DOUBLE_EQ(reference.coeffs[d], other.coeffs[d]) << label << " dim " << d;
  }
  EXPECT_TRUE(SnapshotsEqual(reference.snapshot, other.snapshot)) << label;
  EXPECT_EQ(reference.tasks_dispatched, other.tasks_dispatched) << label;
  ASSERT_EQ(reference.logs.size(), other.logs.size()) << label;
  for (const auto& [worker, ref_log] : reference.logs) {
    const auto it = other.logs.find(worker);
    ASSERT_TRUE(it != other.logs.end()) << label << " worker " << worker;
    ASSERT_EQ(ref_log.size(), it->second.size()) << label << " worker " << worker;
    for (std::size_t i = 0; i < ref_log.size(); ++i) {
      EXPECT_TRUE(ref_log[i] == it->second[i])
          << label << " worker " << worker << " command " << i
          << " (id " << ref_log[i].id << " vs " << it->second[i].id << ")";
    }
  }
}

// The headline cluster contract: the worker-observed command streams of the serialized
// path (decoded from wire buffers) are bit-identical to the per-task AND struct-batched
// streams — same ids, before-edges, params, copy ids — at 1/2/4 shards.
TEST(SerializedBatchTest, SerializedDispatchBitIdenticalToPerTaskAndStructAt124Shards) {
  const CentralRun per_task = RunLrCentral(DispatchMode::kPerTask, 1, /*threaded=*/false);
  for (std::uint32_t shards : {1u, 2u, 4u}) {
    const std::string label = "shards=" + std::to_string(shards);
    const CentralRun structs =
        RunLrCentral(DispatchMode::kStructBatched, shards, /*threaded=*/false);
    const CentralRun serialized =
        RunLrCentral(DispatchMode::kSerialized, shards, /*threaded=*/false);
    ExpectRunsEqual(per_task, structs, label + " struct");
    ExpectRunsEqual(per_task, serialized, label + " serialized");
  }
}

// Same contract with real parallelism in the engine (the sanitizer-raced configuration:
// serialized assembly jobs write disjoint half slots and read the shared plan).
TEST(SerializedBatchTest, SerializedDispatchBitIdenticalUnderThreadPool) {
  const CentralRun reference = RunLrCentral(DispatchMode::kPerTask, 1, /*threaded=*/false);
  const CentralRun threaded = RunLrCentral(DispatchMode::kSerialized, 4, /*threaded=*/true);
  ExpectRunsEqual(reference, threaded, "thread-pool serialized");
}

// Steady state must reuse cached template bytes (the whole point of the cache) and the
// wire accounting must move from the command bucket to the serialized-batch bucket.
TEST(SerializedBatchTest, SerializedPathReusesTemplateBytesAndTagsWireKind) {
  const CentralRun run = RunLrCentral(DispatchMode::kSerialized, 1, /*threaded=*/false);
  EXPECT_GT(run.serialized.batches, 0u);
  EXPECT_GT(run.serialized.half_encodes, 0u);
  EXPECT_GT(run.serialized.half_reuses, run.serialized.half_encodes);
  EXPECT_GT(run.serialized.bytes_shipped, 0u);
  EXPECT_GT(run.network.messages_for(MessageKind::kSerializedBatch), 0u);
  EXPECT_EQ(run.network.bytes_for(MessageKind::kSerializedBatch),
            static_cast<std::int64_t>(run.serialized.bytes_shipped));

  const CentralRun structs = RunLrCentral(DispatchMode::kStructBatched, 1, false);
  EXPECT_EQ(structs.network.messages_for(MessageKind::kSerializedBatch), 0u);
  EXPECT_EQ(structs.serialized.batches, 0u);
  EXPECT_GT(structs.network.messages_for(MessageKind::kCommand), 0u);
}

}  // namespace
}  // namespace nimbus
