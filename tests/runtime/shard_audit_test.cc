// ShardAccessAuditor death tests and audit-clean regressions (DESIGN.md §11).
//
// The death tests prove each auditor rule fires: a cross-shard access outside an ownership
// window, a second writer for one shard in one batch, a read/write overlap, a window leak
// at batch end, and stale-stamp cache consumption. The regression proves the real engine is
// audit-clean: full controller-driven LR runs at 1/2/4 shards complete under the auditor
// with no violation (any violation is a process abort, so completing IS the assertion) and
// the access counters show the instrumentation actually observed the run.
//
// In builds without NIMBUS_SHARD_AUDIT the hooks are no-ops and every test here skips.

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "src/apps/logistic_regression.h"
#include "src/common/thread_annotations.h"
#include "src/data/version_map.h"
#include "src/driver/cluster.h"
#include "src/driver/job.h"
#include "src/runtime/executor.h"
#include "src/runtime/instantiation_pipeline.h"
#include "src/runtime/shard_audit.h"
#include "src/runtime/sharded_version_map.h"

namespace nimbus::runtime {
namespace {

class ShardAuditTest : public ::testing::Test {
 protected:
  void SetUp() override {
    if (!audit::kEnabled) {
      GTEST_SKIP() << "auditor compiled out (build with -DNIMBUS_SHARD_AUDIT=ON)";
    }
    audit::ResetForTest();
  }
};

// A job holding shard 0's write window reaches across into shard 1. The accessor's own
// CheckOwned cannot catch this (index 1 really is shard 1's), so only the auditor does.
// Deliberate contract violation: the clang thread-safety analysis would (correctly) reject
// this call, so the documented suppression for intentional violations is applied.
void CrossShardWrite(ShardedVersionMap& sharded) NIMBUS_NO_THREAD_SAFETY_ANALYSIS {
  ShardedVersionMap::Shard own = sharded.shard(0);
  ShardWriteScope window(&own, audit::JobKind::kApply, /*job=*/0);
  ShardedVersionMap::Shard foreign = sharded.shard(1);
  foreign.RecordCopyToLatestDense(/*object=*/1, /*dst=*/0);
}

TEST_F(ShardAuditTest, CrossShardWriteOutsideWindowDies) {
  VersionMap map;
  map.CreateObject(LogicalObjectId(0), WorkerId(0));  // dense 0 -> shard 0 (of 2)
  map.CreateObject(LogicalObjectId(1), WorkerId(0));  // dense 1 -> shard 1 (of 2)
  map.InternWorker(WorkerId(0));
  ShardedVersionMap sharded(&map, 2);
  ASSERT_EQ(sharded.ShardOf(0), 0u);
  ASSERT_EQ(sharded.ShardOf(1), 1u);
  EXPECT_DEATH(CrossShardWrite(sharded), "outside an ownership window");
}

TEST_F(ShardAuditTest, SecondWriterInOneBatchDies) {
  EXPECT_DEATH(
      {
        audit::BeginBatch();
        audit::OpenWindow(0, audit::JobKind::kApply, audit::Mode::kWrite, /*job=*/0);
        audit::CloseWindow(0, audit::Mode::kWrite);
        // Same shard, different job, same batch: the single-writer invariant is per
        // batch, not per instant — serialized execution must not hide the conflict.
        audit::OpenWindow(0, audit::JobKind::kApply, audit::Mode::kWrite, /*job=*/1);
      },
      "second writer");
}

TEST_F(ShardAuditTest, ReadWriteOverlapInOneBatchDies) {
  EXPECT_DEATH(
      {
        audit::BeginBatch();
        audit::OpenWindow(0, audit::JobKind::kValidate, audit::Mode::kRead, /*job=*/0);
        audit::CloseWindow(0, audit::Mode::kRead);
        audit::OpenWindow(0, audit::JobKind::kApply, audit::Mode::kWrite, /*job=*/1);
      },
      "read/write overlap");
}

TEST_F(ShardAuditTest, WindowLeakAtBatchEndDies) {
  EXPECT_DEATH(
      {
        audit::BeginBatch();
        audit::OpenWindow(0, audit::JobKind::kApply, audit::Mode::kWrite, /*job=*/0);
        audit::EndBatch();
      },
      "window leak");
}

TEST_F(ShardAuditTest, StaleStampConsumptionDies) {
  const std::uint64_t filled_at = audit::CurrentStamp();
  audit::BumpStamp();  // an out-of-window mutation the cache holder did not see
  EXPECT_DEATH(audit::CheckStamp("unit-test cache", filled_at), "stale-stamp consumption");
}

TEST_F(ShardAuditTest, FreshStampConsumptionPasses) {
  audit::BumpStamp();
  const std::uint64_t filled_at = audit::CurrentStamp();
  audit::CheckStamp("unit-test cache", filled_at);  // no mutation in between: fine
  EXPECT_EQ(audit::Counters().stamp_checks, 1u);
}

TEST_F(ShardAuditTest, WriteWindowCoversReadsAndRecordsAccesses) {
  VersionMap map;
  map.CreateObject(LogicalObjectId(0), WorkerId(0));
  map.InternWorker(WorkerId(0));
  ShardedVersionMap sharded(&map, 1);
  ShardedVersionMap::Shard shard = sharded.shard(0);
  {
    ShardWriteScope window(&shard, audit::JobKind::kApply, /*job=*/0);
    shard.RecordCopyToLatestDense(0, 0);
    EXPECT_TRUE(shard.ExistsDense(0));  // read under a write window: allowed
  }
  const audit::AuditCounters counters = audit::Counters();
  EXPECT_EQ(counters.writes, 1u);
  EXPECT_EQ(counters.reads, 1u);
  EXPECT_EQ(counters.windows_opened, 1u);

  audit::AccessRecord records[4];
  const std::size_t n = audit::RecentAccesses(records, 4);
  ASSERT_EQ(n, 2u);
  EXPECT_EQ(records[0].mode, audit::Mode::kWrite);
  EXPECT_EQ(records[0].kind, audit::JobKind::kApply);
  EXPECT_EQ(records[1].mode, audit::Mode::kRead);
}

// -----------------------------------------------------------------------------------------
// The real engine is audit-clean at every shard count
// -----------------------------------------------------------------------------------------

std::vector<double> RunLrAudited(std::uint32_t shards) {
  // Declared before the cluster: the controller's pipeline borrows this executor, so it
  // must be destroyed after the cluster.
  InlineExecutor inline_exec;
  ClusterOptions options;
  options.workers = 4;
  options.partitions = 8;
  options.mode = ControlMode::kTemplates;
  Cluster cluster(options);
  Job job(&cluster);

  apps::LogisticRegressionApp::Config config;
  config.partitions = 8;
  config.reduce_groups = 4;
  config.dim = 6;
  config.rows_per_partition = 16;
  config.virtual_bytes_total = 64LL * 1000 * 1000;
  apps::LogisticRegressionApp app(&job, config);

  if (shards != 1) {
    cluster.controller().instantiation_pipeline().Configure(&inline_exec, shards);
  }
  app.Setup();
  app.RunInnerLoop(6);
  return app.CoeffSnapshot();
}

TEST_F(ShardAuditTest, ControllerRunsAuditCleanAcrossShardCounts) {
  // Any contract violation aborts the process, so completing the run at each shard count
  // is the audit-clean assertion; the counters prove the auditor watched real accesses,
  // and the coefficient cross-check pins shard-count invariance under audit too.
  const std::vector<double> reference = RunLrAudited(1);
  {
    const audit::AuditCounters counters = audit::Counters();
    EXPECT_GT(counters.reads + counters.writes, 0u) << "auditor saw no sharded accesses";
    EXPECT_GT(counters.stamp_bumps, 0u);
  }
  for (std::uint32_t shards : {2u, 4u}) {
    audit::ResetForTest();
    const std::vector<double> sharded = RunLrAudited(shards);
    const audit::AuditCounters counters = audit::Counters();
    EXPECT_GT(counters.reads + counters.writes, 0u) << "shards=" << shards;
    EXPECT_GT(counters.batches, 0u) << "shards=" << shards;  // multi-job batches bracketed
    ASSERT_EQ(reference.size(), sharded.size());
    for (std::size_t d = 0; d < reference.size(); ++d) {
      EXPECT_DOUBLE_EQ(reference[d], sharded[d]) << "shards=" << shards << " dim " << d;
    }
  }
}

}  // namespace
}  // namespace nimbus::runtime
