// Trace determinism (DESIGN.md §12): under the InlineExecutor two identical runs must
// produce bit-identical event streams — same names, order, lanes, tracks, virtual
// timestamps and values. Wall-clock stamps are the only nondeterministic fields, so a
// trace minus its wall times is a regression oracle for the whole control plane, the
// span-level analogue of the worker command-log comparisons.

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "src/apps/logistic_regression.h"
#include "src/common/tracing.h"
#include "src/driver/cluster.h"
#include "src/driver/job.h"

namespace nimbus {
namespace {

using apps::LogisticRegressionApp;

// Everything deterministic about an event: all fields except the wall-clock stamps.
struct EventKey {
  trace::EventType type;
  trace::Lane lane;
  std::uint32_t track;
  std::string name;
  std::uint64_t seq;
  std::int64_t virtual_ns;
  std::int64_t value;

  bool operator==(const EventKey& o) const {
    return type == o.type && lane == o.lane && track == o.track && name == o.name &&
           seq == o.seq && virtual_ns == o.virtual_ns && value == o.value;
  }
};

std::vector<EventKey> TracedLrRun(ControlMode mode, int iterations) {
  trace::Tracer::Options options;
  options.ring_capacity = 1 << 16;
  trace::Tracer::Get().Enable(options);  // resets rings and the sequence counter

  {
    ClusterOptions cluster_options;
    cluster_options.workers = 4;
    cluster_options.partitions = 8;
    cluster_options.mode = mode;
    Cluster cluster(cluster_options);
    Job job(&cluster);

    LogisticRegressionApp::Config config;
    config.partitions = 8;
    config.reduce_groups = 4;
    config.dim = 6;
    config.rows_per_partition = 16;
    config.virtual_bytes_total = 64LL * 1000 * 1000;
    LogisticRegressionApp app(&job, config);
    app.Setup();
    app.RunInnerLoop(iterations);
  }

  std::vector<EventKey> keys;
  for (const trace::Event& e : trace::Tracer::Get().Snapshot()) {
    keys.push_back({e.type, e.lane, e.track, e.name, e.seq, e.virtual_ns, e.value});
  }
  trace::Tracer::Get().Disable();
  EXPECT_EQ(trace::Tracer::Get().dropped(), 0u);
  return keys;
}

class TraceDeterminismTest : public ::testing::TestWithParam<ControlMode> {
 protected:
  void SetUp() override {
#if defined(NIMBUS_TRACING_DISABLED)
    GTEST_SKIP() << "tracing compiled out (-DNIMBUS_TRACING=OFF)";
#endif
  }
};

TEST_P(TraceDeterminismTest, IdenticalRunsProduceIdenticalEventStreams) {
  const std::vector<EventKey> first = TracedLrRun(GetParam(), 4);
  const std::vector<EventKey> second = TracedLrRun(GetParam(), 4);

  ASSERT_GT(first.size(), 0u);
  ASSERT_EQ(first.size(), second.size());
  for (std::size_t i = 0; i < first.size(); ++i) {
    EXPECT_TRUE(first[i] == second[i])
        << "event " << i << ": " << first[i].name << " (seq " << first[i].seq << ", vt "
        << first[i].virtual_ns << ") vs " << second[i].name << " (seq " << second[i].seq
        << ", vt " << second[i].virtual_ns << ")";
    if (!(first[i] == second[i])) {
      break;  // one divergence is enough; the rest is cascade noise
    }
  }
}

TEST_P(TraceDeterminismTest, StreamCoversExpectedLanes) {
  const std::vector<EventKey> events = TracedLrRun(GetParam(), 4);
  bool controller = false, network = false, worker = false;
  for (const EventKey& e : events) {
    controller = controller || e.lane == trace::Lane::kController;
    network = network || e.lane == trace::Lane::kNetwork;
    worker = worker || e.lane == trace::Lane::kWorker;
  }
  EXPECT_TRUE(controller);
  EXPECT_TRUE(network);
  EXPECT_TRUE(worker);
}

INSTANTIATE_TEST_SUITE_P(Modes, TraceDeterminismTest,
                         ::testing::Values(ControlMode::kTemplates,
                                           ControlMode::kCentralOnly),
                         [](const ::testing::TestParamInfo<ControlMode>& param) {
                           return param.param == ControlMode::kTemplates ? "Templates"
                                                                         : "CentralOnly";
                         });

}  // namespace
}  // namespace nimbus
