// Cross-transport equivalence (DESIGN.md §13): the same driver program run over the
// deterministic simulator network and over real loopback TCP must produce bit-identical
// results — coefficients, per-iteration scalars, and the exact command stream every worker
// observed. The control plane is transport-agnostic; these tests are the proof.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "src/apps/logistic_regression.h"
#include "src/driver/cluster.h"
#include "src/driver/job.h"
#include "src/task/command.h"

namespace nimbus {
namespace {

using apps::LogisticRegressionApp;

struct RunOutput {
  std::vector<double> coefficients;
  std::vector<double> iteration_scalars;
  std::vector<std::vector<Command>> command_logs;  // one per worker
};

LogisticRegressionApp::Config SmallConfig() {
  LogisticRegressionApp::Config config;
  config.partitions = 8;
  config.reduce_groups = 4;
  config.dim = 6;
  config.rows_per_partition = 16;
  config.virtual_bytes_total = 64LL * 1000 * 1000;
  return config;
}

RunOutput RunLr(TransportKind transport, ControlMode mode, bool serialized_batching,
                int iters) {
  ClusterOptions options;
  options.workers = 4;
  options.partitions = 8;
  options.mode = mode;
  options.transport = transport;
  options.serialized_batching = serialized_batching;
  options.enable_command_log = true;
  Cluster cluster(options);
  Job job(&cluster);

  LogisticRegressionApp app(&job, SmallConfig());
  app.Setup();

  RunOutput out;
  for (int i = 0; i < iters; ++i) {
    out.iteration_scalars.push_back(app.RunInnerIteration().FirstScalar());
  }

  // Under TCP the workers' event loops ran concurrently with the driver; Quiesce
  // establishes happens-before with every node before reading their state.
  cluster.Quiesce();
  out.coefficients = app.CoeffSnapshot();
  for (WorkerId id : cluster.worker_ids()) {
    out.command_logs.push_back(cluster.worker(id)->command_log());
  }
  return out;
}

void ExpectIdentical(const RunOutput& sim, const RunOutput& tcp) {
  // Scalars and coefficients: exact double equality, not tolerance — the arithmetic and
  // its order must be the same on both transports.
  ASSERT_EQ(sim.iteration_scalars.size(), tcp.iteration_scalars.size());
  for (std::size_t i = 0; i < sim.iteration_scalars.size(); ++i) {
    EXPECT_EQ(sim.iteration_scalars[i], tcp.iteration_scalars[i]) << "iteration " << i;
  }
  ASSERT_EQ(sim.coefficients.size(), tcp.coefficients.size());
  for (std::size_t d = 0; d < sim.coefficients.size(); ++d) {
    EXPECT_EQ(sim.coefficients[d], tcp.coefficients[d]) << "coefficient " << d;
  }

  // Command logs: every worker observed the same commands in the same order, field by
  // field (Command::operator== compares all of them).
  ASSERT_EQ(sim.command_logs.size(), tcp.command_logs.size());
  for (std::size_t w = 0; w < sim.command_logs.size(); ++w) {
    ASSERT_EQ(sim.command_logs[w].size(), tcp.command_logs[w].size()) << "worker " << w;
    for (std::size_t c = 0; c < sim.command_logs[w].size(); ++c) {
      EXPECT_EQ(sim.command_logs[w][c], tcp.command_logs[w][c])
          << "worker " << w << " command " << c;
    }
  }
}

TEST(TransportEquivalenceTest, LrTemplatesBitIdenticalSimVsTcp) {
  const RunOutput sim = RunLr(TransportKind::kSim, ControlMode::kTemplates, false, 5);
  const RunOutput tcp = RunLr(TransportKind::kTcp, ControlMode::kTemplates, false, 5);
  ASSERT_FALSE(sim.iteration_scalars.empty());
  EXPECT_GT(sim.iteration_scalars.front(), 0.0);
  ExpectIdentical(sim, tcp);
}

TEST(TransportEquivalenceTest, LrCentralOnlyBitIdenticalSimVsTcp) {
  const RunOutput sim = RunLr(TransportKind::kSim, ControlMode::kCentralOnly, false, 3);
  const RunOutput tcp = RunLr(TransportKind::kTcp, ControlMode::kCentralOnly, false, 3);
  ExpectIdentical(sim, tcp);
}

TEST(TransportEquivalenceTest, LrSerializedBatchingBitIdenticalSimVsTcp) {
  const RunOutput sim = RunLr(TransportKind::kSim, ControlMode::kCentralOnly, true, 3);
  const RunOutput tcp = RunLr(TransportKind::kTcp, ControlMode::kCentralOnly, true, 3);
  ExpectIdentical(sim, tcp);
}

TEST(TransportEquivalenceTest, TcpMatchesSequentialReference) {
  // Not just self-consistency: the TCP run must match the model-free sequential
  // reference, like every simulator run does.
  const int iters = 4;
  const RunOutput tcp = RunLr(TransportKind::kTcp, ControlMode::kTemplates, false, iters);
  const std::vector<double> expected =
      LogisticRegressionApp::ReferenceInnerLoop(SmallConfig(), iters);
  ASSERT_EQ(expected.size(), tcp.coefficients.size());
  for (std::size_t d = 0; d < expected.size(); ++d) {
    EXPECT_DOUBLE_EQ(expected[d], tcp.coefficients[d]) << "coefficient " << d;
  }
}

}  // namespace
}  // namespace nimbus
