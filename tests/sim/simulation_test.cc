// Unit tests for the discrete-event engine, processors, core pools and the network model.

#include <gtest/gtest.h>

#include <vector>

#include "src/sim/cost_model.h"
#include "src/sim/network.h"
#include "src/sim/simulation.h"

namespace nimbus::sim {
namespace {

TEST(SimulationTest, EventsFireInTimeOrder) {
  Simulation s;
  std::vector<int> order;
  s.ScheduleAt(Millis(30), [&] { order.push_back(3); });
  s.ScheduleAt(Millis(10), [&] { order.push_back(1); });
  s.ScheduleAt(Millis(20), [&] { order.push_back(2); });
  s.Run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(s.now(), Millis(30));
}

TEST(SimulationTest, TiesBreakByInsertionOrder) {
  Simulation s;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    s.ScheduleAt(Millis(5), [&order, i] { order.push_back(i); });
  }
  s.Run();
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
  }
}

TEST(SimulationTest, CallbacksCanScheduleMoreEvents) {
  Simulation s;
  int fired = 0;
  s.ScheduleAfter(Millis(1), [&] {
    ++fired;
    s.ScheduleAfter(Millis(1), [&] { ++fired; });
  });
  s.Run();
  EXPECT_EQ(fired, 2);
  EXPECT_EQ(s.now(), Millis(2));
}

TEST(SimulationTest, RunUntilLeavesLaterEventsQueued) {
  Simulation s;
  int fired = 0;
  s.ScheduleAt(Millis(10), [&] { ++fired; });
  s.ScheduleAt(Millis(30), [&] { ++fired; });
  s.RunUntil(Millis(20));
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(s.pending_events(), 1u);
  s.Run();
  EXPECT_EQ(fired, 2);
}

TEST(SimulationTest, RunUntilConditionStopsEarly) {
  Simulation s;
  int fired = 0;
  for (int i = 1; i <= 10; ++i) {
    s.ScheduleAt(Millis(i), [&] { ++fired; });
  }
  const bool ok = s.RunUntilCondition([&] { return fired == 4; });
  EXPECT_TRUE(ok);
  EXPECT_EQ(fired, 4);
  EXPECT_EQ(s.now(), Millis(4));
}

TEST(SimulationTest, RunUntilConditionReturnsFalseWhenDrained) {
  Simulation s;
  s.ScheduleAfter(Millis(1), [] {});
  EXPECT_FALSE(s.RunUntilCondition([] { return false; }));
}

TEST(SimulationTest, PastEventsClampToNow) {
  Simulation s;
  s.ScheduleAt(Millis(10), [] {});
  s.Run();
  bool fired = false;
  s.ScheduleAt(Millis(5), [&] { fired = true; });  // in the past
  s.Run();
  EXPECT_TRUE(fired);
  EXPECT_EQ(s.now(), Millis(10));
}

TEST(ProcessorTest, SerializesWork) {
  Simulation s;
  Processor p(&s);
  std::vector<TimePoint> finish;
  p.Submit(Millis(10), [&] { finish.push_back(s.now()); });
  p.Submit(Millis(5), [&] { finish.push_back(s.now()); });
  s.Run();
  ASSERT_EQ(finish.size(), 2u);
  EXPECT_EQ(finish[0], Millis(10));
  EXPECT_EQ(finish[1], Millis(15));  // queued behind the first
  EXPECT_EQ(p.total_busy(), Millis(15));
}

TEST(ProcessorTest, IdleGapsDoNotAccumulate) {
  Simulation s;
  Processor p(&s);
  p.Submit(Millis(1), nullptr);
  s.Run();
  s.ScheduleAt(Millis(100), [] {});
  s.Run();
  // Submitting at t=100 on an idle processor starts immediately.
  const TimePoint done = p.Submit(Millis(2), nullptr);
  EXPECT_EQ(done, Millis(102));
}

TEST(CorePoolTest, ParallelUpToCoreCount) {
  Simulation s;
  CorePool pool(&s, 4);
  std::vector<TimePoint> finish;
  for (int i = 0; i < 8; ++i) {
    pool.Submit(Millis(10), [&] { finish.push_back(s.now()); });
  }
  s.Run();
  ASSERT_EQ(finish.size(), 8u);
  // First four run in parallel, next four queue behind them.
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(finish[static_cast<std::size_t>(i)], Millis(10));
    EXPECT_EQ(finish[static_cast<std::size_t>(i + 4)], Millis(20));
  }
  EXPECT_EQ(pool.AllIdleAt(), Millis(20));
}

TEST(CorePoolTest, WorkConserving) {
  Simulation s;
  CorePool pool(&s, 2);
  pool.Submit(Millis(10), nullptr);
  pool.Submit(Millis(2), nullptr);
  // The third item should land on the core that frees at 2ms, not the 10ms one.
  const TimePoint done = pool.Submit(Millis(3), nullptr);
  EXPECT_EQ(done, Millis(5));
}

TEST(NetworkTest, DeliveryIncludesLatencyAndSerialization) {
  Simulation s;
  CostModel costs;
  costs.network_latency = Millis(1);
  costs.network_bytes_per_second = 1e9;  // 1 GB/s
  costs.message_overhead_bytes = 0;
  Network net(&s, &costs);

  TimePoint delivered = 0;
  net.Send(NodeAddress(0), NodeAddress(1), 1000000, [&] { delivered = s.now(); },
           MessageKind::kData);  // 1 MB => 1 ms serialization
  s.Run();
  EXPECT_EQ(delivered, Millis(2));  // 1 ms wire + 1 ms latency
  EXPECT_EQ(net.messages_sent(), 1u);
  EXPECT_EQ(net.bytes_sent(), 1000000);
}

TEST(NetworkTest, SenderNicSerializesTransfers) {
  Simulation s;
  CostModel costs;
  costs.network_latency = 0;
  costs.network_bytes_per_second = 1e9;
  costs.message_overhead_bytes = 0;
  Network net(&s, &costs);

  std::vector<TimePoint> deliveries;
  // Two 1 MB messages from the same sender: the second waits for the first's TX slot.
  net.Send(NodeAddress(0), NodeAddress(1), 1000000,
           [&] { deliveries.push_back(s.now()); }, MessageKind::kData);
  net.Send(NodeAddress(0), NodeAddress(2), 1000000,
           [&] { deliveries.push_back(s.now()); }, MessageKind::kData);
  // A message from a different sender is not blocked.
  net.Send(NodeAddress(5), NodeAddress(1), 1000000,
           [&] { deliveries.push_back(s.now()); }, MessageKind::kData);
  s.Run();
  ASSERT_EQ(deliveries.size(), 3u);
  EXPECT_EQ(deliveries[0], Millis(1));
  EXPECT_EQ(deliveries[1], Millis(1));  // the other sender, in parallel
  EXPECT_EQ(deliveries[2], Millis(2));  // queued behind the first on sender 0
}

TEST(CostModelTest, TransferTimeMonotoneInBytes) {
  CostModel costs;
  EXPECT_LT(costs.TransferTime(100), costs.TransferTime(1000000));
  EXPECT_GE(costs.TransferTime(0), costs.network_latency);
}

}  // namespace
}  // namespace nimbus::sim
