// Envelope codec (src/task/wire.h, DESIGN.md §13).
//
// Everything that crosses the transport seam travels as an encoded envelope; these tests
// pin the codec's contract: exact round-tripping for every envelope type (randomized over
// field shapes), and CHECK-fail discipline for malformed buffers — truncations at any
// boundary, trailing bytes, bad magics, and unknown type bytes must die loudly rather than
// misparse.

#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <random>
#include <utility>
#include <vector>

#include "src/data/payload.h"
#include "src/task/command.h"
#include "src/task/messages.h"
#include "src/task/wire.h"

namespace nimbus {
namespace {

ParameterBlob RandomBlob(std::mt19937_64& rng, std::size_t size) {
  ParameterBlob blob(size);
  for (auto& b : blob) {
    b = static_cast<std::uint8_t>(rng());
  }
  return blob;
}

// Random full-field commands: the envelope codec encodes every field of every command
// (unlike the NBW1 batch codec there is no base-relative contract to respect).
std::vector<Command> RandomCommands(std::mt19937_64& rng, std::size_t n) {
  std::vector<Command> cmds;
  for (std::size_t i = 0; i < n; ++i) {
    Command c;
    c.id = CommandId(rng() % 1'000'000);
    c.type = static_cast<CommandType>(rng() % 7);
    const std::size_t n_before = rng() % 4;
    for (std::size_t b = 0; b < n_before; ++b) {
      c.before.emplace_back(rng() % 1'000'000);
    }
    const std::size_t n_reads = rng() % 5;
    for (std::size_t r = 0; r < n_reads; ++r) {
      c.read_set.emplace_back(rng() % 10'000);
    }
    const std::size_t n_writes = rng() % 3;
    for (std::size_t w = 0; w < n_writes; ++w) {
      c.write_set.emplace_back(rng() % 10'000);
    }
    if (rng() % 2 == 0) {
      c.params = RandomBlob(rng, rng() % 200);
    }
    c.task_id = TaskId(rng() % 1'000'000);
    c.function = FunctionId(rng() % 50);
    c.duration = static_cast<sim::Duration>(rng() % 1'000'000);
    c.returns_scalar = rng() % 2 == 0;
    c.copy_id = CopyId(rng() % 1'000'000);
    c.peer = WorkerId(rng() % 100);
    c.copy_object = LogicalObjectId(rng() % 10'000);
    c.copy_version = rng() % 1'000;
    c.copy_bytes = static_cast<std::int64_t>(rng() % 1'000'000);
    c.data_object = LogicalObjectId(rng() % 10'000);
    cmds.push_back(std::move(c));
  }
  return cmds;
}

TEST(EnvelopeCodecTest, CommandsEnvelopeRandomizedRoundTrip) {
  std::mt19937_64 rng(20260808);
  for (int round = 0; round < 20; ++round) {
    wire::CommandsEnvelope e;
    e.group_seq = rng();
    e.expected_total = rng() % 500;
    e.finalize = rng() % 2 == 0;
    e.barrier = rng() % 2 == 0;
    e.commands = RandomCommands(rng, rng() % 40);

    const ParameterBlob bytes = wire::EncodeCommandsEnvelope(e);
    ASSERT_EQ(wire::PeekEnvelopeType(bytes), wire::EnvelopeType::kCommands);
    const wire::CommandsEnvelope d = wire::DecodeCommandsEnvelope(bytes);
    EXPECT_EQ(d.group_seq, e.group_seq);
    EXPECT_EQ(d.expected_total, e.expected_total);
    EXPECT_EQ(d.finalize, e.finalize);
    EXPECT_EQ(d.barrier, e.barrier);
    ASSERT_EQ(d.commands.size(), e.commands.size());
    for (std::size_t i = 0; i < e.commands.size(); ++i) {
      EXPECT_EQ(d.commands[i], e.commands[i]) << "command " << i;
    }
    // Re-encoding the decoded envelope must reproduce the bytes exactly.
    EXPECT_EQ(wire::EncodeCommandsEnvelope(d), bytes);
  }
}

TEST(EnvelopeCodecTest, SerializedBatchEnvelopeNestsBytesVerbatim) {
  std::mt19937_64 rng(7);
  wire::SerializedBatchEnvelope e;
  e.group_seq = 42;
  e.expected_total = 17;
  e.finalize = true;
  e.barrier = true;
  e.batch = RandomBlob(rng, 513);

  const ParameterBlob bytes = wire::EncodeSerializedBatchEnvelope(e);
  const wire::SerializedBatchEnvelope d = wire::DecodeSerializedBatchEnvelope(bytes);
  EXPECT_EQ(d.group_seq, 42u);
  EXPECT_EQ(d.expected_total, 17u);
  EXPECT_TRUE(d.finalize);
  EXPECT_TRUE(d.barrier);
  EXPECT_EQ(d.batch, e.batch);
}

TEST(EnvelopeCodecTest, InstallTemplateEnvelopeRoundTripsEveryEntryField) {
  core::WorkerHalf half;
  half.worker = WorkerId(3);
  for (int i = 0; i < 5; ++i) {
    core::WtEntry entry;
    entry.type = i % 2 == 0 ? CommandType::kTask : CommandType::kCopySend;
    entry.function = FunctionId(static_cast<std::uint64_t>(10 + i));
    entry.global_entry = i;
    entry.duration = sim::Millis(i + 1);
    entry.returns_scalar = i == 4;
    entry.reads = {LogicalObjectId(static_cast<std::uint64_t>(i)), LogicalObjectId(99)};
    entry.writes = {LogicalObjectId(static_cast<std::uint64_t>(100 + i))};
    half.entries.push_back(entry);
  }
  wire::InstallTemplateEnvelope e;
  e.id = WorkerTemplateId(9);
  e.half = half;

  const ParameterBlob bytes = wire::EncodeInstallTemplateEnvelope(e);
  ASSERT_EQ(wire::PeekEnvelopeType(bytes), wire::EnvelopeType::kInstallTemplate);
  const wire::InstallTemplateEnvelope d = wire::DecodeInstallTemplateEnvelope(bytes);
  EXPECT_EQ(d.id, WorkerTemplateId(9));
  EXPECT_EQ(d.half.worker, WorkerId(3));
  ASSERT_EQ(d.half.entries.size(), half.entries.size());
  for (std::size_t i = 0; i < half.entries.size(); ++i) {
    const core::WtEntry& a = half.entries[i];
    const core::WtEntry& b = d.half.entries[i];
    EXPECT_EQ(b.type, a.type);
    EXPECT_EQ(b.function, a.function);
    EXPECT_EQ(b.global_entry, a.global_entry);
    EXPECT_EQ(b.duration, a.duration);
    EXPECT_EQ(b.returns_scalar, a.returns_scalar);
    EXPECT_EQ(b.reads, a.reads);
    EXPECT_EQ(b.writes, a.writes);
  }
}

TEST(EnvelopeCodecTest, InstantiateEnvelopeRoundTripsParamsAndSeq) {
  std::mt19937_64 rng(11);
  InstantiateMsg msg;
  msg.worker_template = WorkerTemplateId(5);
  msg.group_seq = 1234;
  msg.command_base = CommandId(1'000'000);
  msg.task_base = TaskId(500'000);
  msg.params.emplace_back(0, RandomBlob(rng, 8));
  msg.params.emplace_back(7, RandomBlob(rng, 0));
  msg.params.emplace_back(12, RandomBlob(rng, 300));

  const ParameterBlob bytes = wire::EncodeInstantiateEnvelope(msg);
  const InstantiateMsg d = wire::DecodeInstantiateEnvelope(bytes);
  EXPECT_EQ(d.worker_template, msg.worker_template);
  EXPECT_EQ(d.group_seq, msg.group_seq);
  EXPECT_EQ(d.command_base, msg.command_base);
  EXPECT_EQ(d.task_base, msg.task_base);
  ASSERT_EQ(d.params.size(), msg.params.size());
  for (std::size_t i = 0; i < msg.params.size(); ++i) {
    EXPECT_EQ(d.params[i], msg.params[i]) << "param " << i;
  }
  EXPECT_TRUE(d.edits.empty());
}

TEST(EnvelopeCodecTest, ControlEnvelopesRoundTrip) {
  wire::DecodeHaltEnvelope(wire::EncodeHaltEnvelope());

  wire::HeartbeatEnvelope hb;
  hb.worker = WorkerId(7);
  hb.seq = 42;
  const wire::HeartbeatEnvelope hbd =
      wire::DecodeHeartbeatEnvelope(wire::EncodeHeartbeatEnvelope(hb));
  EXPECT_EQ(hbd.worker, WorkerId(7));
  EXPECT_EQ(hbd.seq, 42u);

  wire::HeartbeatAckEnvelope ack;
  ack.worker = WorkerId(7);
  ack.seq = 42;
  const wire::HeartbeatAckEnvelope ackd =
      wire::DecodeHeartbeatAckEnvelope(wire::EncodeHeartbeatAckEnvelope(ack));
  EXPECT_EQ(ackd.worker, WorkerId(7));
  EXPECT_EQ(ackd.seq, 42u);

  wire::SuspectNoticeEnvelope suspect;
  suspect.worker = WorkerId(3);
  suspect.missed_beats = 2;
  const wire::SuspectNoticeEnvelope suspectd =
      wire::DecodeSuspectNoticeEnvelope(wire::EncodeSuspectNoticeEnvelope(suspect));
  EXPECT_EQ(suspectd.worker, WorkerId(3));
  EXPECT_EQ(suspectd.missed_beats, 2u);

  wire::LoadObjectsEnvelope lo;
  lo.group_seq = 88;
  lo.objects = {LogicalObjectId(1), LogicalObjectId(2), LogicalObjectId(500)};
  const wire::LoadObjectsEnvelope lod =
      wire::DecodeLoadObjectsEnvelope(wire::EncodeLoadObjectsEnvelope(lo));
  EXPECT_EQ(lod.group_seq, 88u);
  EXPECT_EQ(lod.objects, lo.objects);

  wire::GroupCompleteEnvelope gc;
  gc.worker = WorkerId(2);
  gc.group_seq = 31;
  gc.scalars = {{TaskId(10), 1.5}, {TaskId(11), -2.25}};
  const wire::GroupCompleteEnvelope gcd =
      wire::DecodeGroupCompleteEnvelope(wire::EncodeGroupCompleteEnvelope(gc));
  EXPECT_EQ(gcd.worker, WorkerId(2));
  EXPECT_EQ(gcd.group_seq, 31u);
  ASSERT_EQ(gcd.scalars.size(), 2u);
  EXPECT_EQ(gcd.scalars[0].task, TaskId(10));
  EXPECT_DOUBLE_EQ(gcd.scalars[0].value, 1.5);
  EXPECT_EQ(gcd.scalars[1].task, TaskId(11));
  EXPECT_DOUBLE_EQ(gcd.scalars[1].value, -2.25);
}

TEST(EnvelopeCodecTest, DriverEnvelopesRoundTrip) {
  wire::InstantiateRequestEnvelope ir;
  ir.request_id = 5;
  ir.name = "lr_inner";
  ir.params.emplace_back(3, ParameterBlob{1, 2, 3});
  ir.next_hint = "lr_outer";
  const wire::InstantiateRequestEnvelope ird =
      wire::DecodeInstantiateRequestEnvelope(wire::EncodeInstantiateRequestEnvelope(ir));
  EXPECT_EQ(ird.request_id, 5u);
  EXPECT_EQ(ird.name, "lr_inner");
  ASSERT_EQ(ird.params.size(), 1u);
  EXPECT_EQ(ird.params[0], ir.params[0]);
  EXPECT_EQ(ird.next_hint, "lr_outer");

  wire::CheckpointRequestEnvelope cr;
  cr.request_id = 6;
  cr.marker = 40;
  const wire::CheckpointRequestEnvelope crd =
      wire::DecodeCheckpointRequestEnvelope(wire::EncodeCheckpointRequestEnvelope(cr));
  EXPECT_EQ(crd.request_id, 6u);
  EXPECT_EQ(crd.marker, 40u);

  wire::BlockDoneEnvelope bd;
  bd.request_id = 7;
  bd.scalars = {{TaskId(1), 0.5}};
  const wire::BlockDoneEnvelope bdd =
      wire::DecodeBlockDoneEnvelope(wire::EncodeBlockDoneEnvelope(bd));
  EXPECT_EQ(bdd.request_id, 7u);
  ASSERT_EQ(bdd.scalars.size(), 1u);
  EXPECT_EQ(bdd.scalars[0].task, TaskId(1));

  EXPECT_EQ(wire::DecodeCheckpointDoneEnvelope(wire::EncodeCheckpointDoneEnvelope(9)), 9u);
  EXPECT_EQ(wire::DecodeRecoveryNoticeEnvelope(wire::EncodeRecoveryNoticeEnvelope(13)), 13u);
}

TEST(EnvelopeCodecTest, DataCopyEnvelopeCarriesScalarAndVectorPayloads) {
  wire::DataCopyEnvelope e;
  e.copy = CopyId(77);
  e.object = LogicalObjectId(5);
  e.version = 3;
  e.payload = std::make_unique<ScalarPayload>(6.75);
  const wire::DataCopyEnvelope d =
      wire::DecodeDataCopyEnvelope(wire::EncodeDataCopyEnvelope(e));
  EXPECT_EQ(d.copy, CopyId(77));
  EXPECT_EQ(d.object, LogicalObjectId(5));
  EXPECT_EQ(d.version, 3u);
  const auto* s = dynamic_cast<const ScalarPayload*>(d.payload.get());
  ASSERT_NE(s, nullptr);
  EXPECT_DOUBLE_EQ(s->value(), 6.75);

  wire::DataCopyEnvelope v;
  v.copy = CopyId(78);
  v.object = LogicalObjectId(6);
  v.version = 4;
  auto vec = std::make_unique<VectorPayload>();
  vec->values() = {1.0, -2.5, 3.125};
  v.payload = std::move(vec);
  const wire::DataCopyEnvelope vd =
      wire::DecodeDataCopyEnvelope(wire::EncodeDataCopyEnvelope(v));
  const auto* pv = dynamic_cast<const VectorPayload*>(vd.payload.get());
  ASSERT_NE(pv, nullptr);
  EXPECT_EQ(pv->values(), (std::vector<double>{1.0, -2.5, 3.125}));
}

TEST(EnvelopeCodecDeathTest, TruncationAtEveryBoundaryDies) {
  wire::CommandsEnvelope e;
  e.group_seq = 9;
  e.expected_total = 1;
  std::mt19937_64 rng(3);
  e.commands = RandomCommands(rng, 2);
  const ParameterBlob bytes = wire::EncodeCommandsEnvelope(e);

  // Sample truncation points across the buffer, including mid-header and mid-command.
  for (std::size_t cut : {std::size_t{0}, std::size_t{3}, std::size_t{4}, std::size_t{12},
                          bytes.size() / 2, bytes.size() - 1}) {
    ParameterBlob truncated(bytes.begin(), bytes.begin() + static_cast<std::ptrdiff_t>(cut));
    EXPECT_DEATH(wire::DecodeCommandsEnvelope(truncated), "") << "cut at " << cut;
  }
}

TEST(EnvelopeCodecDeathTest, TrailingBytesDie) {
  wire::HeartbeatEnvelope hb;
  hb.worker = WorkerId(1);
  ParameterBlob bytes = wire::EncodeHeartbeatEnvelope(hb);
  bytes.push_back(0);
  EXPECT_DEATH(wire::DecodeHeartbeatEnvelope(bytes), "trailing");

  ParameterBlob halt = wire::EncodeHaltEnvelope();
  halt.push_back(7);
  EXPECT_DEATH(wire::DecodeHaltEnvelope(halt), "");
}

TEST(EnvelopeCodecDeathTest, BadMagicAndUnknownTypeDie) {
  ParameterBlob bytes = wire::EncodeHaltEnvelope();
  ParameterBlob bad_magic = bytes;
  bad_magic[0] ^= 0xFF;
  EXPECT_DEATH(wire::PeekEnvelopeType(bad_magic), "");

  ParameterBlob bad_type = bytes;
  bad_type[4] = 0xEE;  // type byte past kEnvelopeTypeCount
  EXPECT_DEATH(wire::PeekEnvelopeType(bad_type), "");

  // Decoding as the wrong (valid) type must also die: the header pins the type.
  EXPECT_DEATH(wire::DecodeHeartbeatEnvelope(bytes), "");
}

TEST(EnvelopeCodecDeathTest, OversizedCountFieldDiesBeforeAllocating) {
  wire::CommandsEnvelope e;
  e.group_seq = 1;
  const ParameterBlob bytes = wire::EncodeCommandsEnvelope(e);
  ParameterBlob corrupt = bytes;
  // The command count is the 4 bytes before the (empty) records; blast it to 2^32-1.
  for (std::size_t i = corrupt.size() - 4; i < corrupt.size(); ++i) {
    corrupt[i] = 0xFF;
  }
  EXPECT_DEATH(wire::DecodeCommandsEnvelope(corrupt), "");
}

}  // namespace
}  // namespace nimbus
