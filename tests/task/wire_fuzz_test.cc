// Deterministic decoder-robustness sweep (DESIGN.md §14.5): every envelope type gets a
// valid exemplar, and every exemplar gets mutated — truncated at each boundary, bit-flipped
// at each byte, length prefixes blasted to lie — then fed back through its decoder. The
// contract under test is "reject cleanly": a malformed buffer must fail a bounds CHECK (no
// crash, no over-read, no huge allocation), never misparse. ScopedCheckThrow turns the
// CHECK aborts into exceptions so thousands of cases run in-process; the CI sanitizer legs
// run this suite under ASan/UBSan, which is what actually proves "no over-read".

#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "src/common/logging.h"
#include "src/data/payload.h"
#include "src/task/command.h"
#include "src/task/messages.h"
#include "src/task/wire.h"

namespace nimbus {
namespace {

struct CorpusEntry {
  std::string name;
  wire::EnvelopeType type;
  ParameterBlob bytes;
};

Command MakeTask(std::uint64_t id) {
  Command c;
  c.id = CommandId(id);
  c.type = CommandType::kTask;
  c.read_set = {LogicalObjectId(3), LogicalObjectId(9)};
  c.write_set = {LogicalObjectId(4)};
  c.params = ParameterBlob{0xDE, 0xAD, 0xBE, 0xEF};
  c.task_id = TaskId(id + 1000);
  c.function = FunctionId(7);
  c.duration = sim::Micros(50);
  c.returns_scalar = true;
  return c;
}

// One valid encoding per envelope type; the mutation sweeps below cover all of them.
std::vector<CorpusEntry> BuildCorpus() {
  std::vector<CorpusEntry> corpus;
  auto add = [&](const char* name, wire::EnvelopeType type, ParameterBlob bytes) {
    corpus.push_back({name, type, std::move(bytes)});
  };

  wire::CommandsEnvelope commands;
  commands.group_seq = 11;
  commands.expected_total = 2;
  commands.commands = {MakeTask(100), MakeTask(101)};
  add("commands", wire::EnvelopeType::kCommands, wire::EncodeCommandsEnvelope(commands));

  wire::SerializedBatchEnvelope batch;
  batch.group_seq = 12;
  batch.batch = ParameterBlob{1, 2, 3, 4, 5, 6, 7, 8};
  add("serialized_batch", wire::EnvelopeType::kSerializedBatch,
      wire::EncodeSerializedBatchEnvelope(batch));

  wire::InstallTemplateEnvelope install;
  install.id = WorkerTemplateId(5);
  install.half.worker = WorkerId(2);
  core::WtEntry entry;
  entry.type = CommandType::kTask;
  entry.function = FunctionId(9);
  entry.global_entry = 0;
  entry.reads = {LogicalObjectId(1)};
  entry.writes = {LogicalObjectId(2)};
  install.half.entries.push_back(entry);
  add("install_template", wire::EnvelopeType::kInstallTemplate,
      wire::EncodeInstallTemplateEnvelope(install));

  InstantiateMsg inst;
  inst.worker_template = WorkerTemplateId(5);
  inst.group_seq = 13;
  inst.command_base = CommandId(1000);
  inst.task_base = TaskId(2000);
  inst.params.emplace_back(0, ParameterBlob{9, 9});
  add("instantiate", wire::EnvelopeType::kInstantiate, wire::EncodeInstantiateEnvelope(inst));

  add("halt", wire::EnvelopeType::kHalt, wire::EncodeHaltEnvelope());

  wire::LoadObjectsEnvelope load;
  load.group_seq = 14;
  load.objects = {LogicalObjectId(1), LogicalObjectId(2)};
  add("load_objects", wire::EnvelopeType::kLoadObjects, wire::EncodeLoadObjectsEnvelope(load));

  wire::HeartbeatEnvelope beat;
  beat.worker = WorkerId(3);
  beat.seq = 77;
  add("heartbeat", wire::EnvelopeType::kHeartbeat, wire::EncodeHeartbeatEnvelope(beat));

  wire::GroupCompleteEnvelope complete;
  complete.worker = WorkerId(3);
  complete.group_seq = 15;
  complete.scalars = {{TaskId(1), 0.5}, {TaskId(2), -1.25}};
  add("group_complete", wire::EnvelopeType::kGroupComplete,
      wire::EncodeGroupCompleteEnvelope(complete));

  wire::DataCopyEnvelope copy;
  copy.copy = CopyId(21);
  copy.object = LogicalObjectId(6);
  copy.version = 2;
  auto vec = std::make_unique<VectorPayload>();
  vec->values() = {1.0, 2.5, -3.0};
  copy.payload = std::move(vec);
  add("data_copy", wire::EnvelopeType::kDataCopy, wire::EncodeDataCopyEnvelope(copy));

  wire::SubmitStagesEnvelope submit;
  submit.request_id = 31;
  submit.capture_name = "block";
  StageDescriptor stage;
  stage.name = "stage0";
  TaskDescriptor task;
  task.function = FunctionId(7);
  task.reads = {{VariableId(1), 0}};
  task.writes = {{VariableId(1), 0}};
  task.params = ParameterBlob{1, 2};
  stage.tasks.push_back(task);
  submit.stages.push_back(stage);
  add("submit_stages", wire::EnvelopeType::kSubmitStages,
      wire::EncodeSubmitStagesEnvelope(submit));

  wire::InstantiateRequestEnvelope request;
  request.request_id = 32;
  request.name = "block";
  request.params.emplace_back(1, ParameterBlob{8});
  request.next_hint = "next";
  add("instantiate_request", wire::EnvelopeType::kInstantiateRequest,
      wire::EncodeInstantiateRequestEnvelope(request));

  wire::CheckpointRequestEnvelope checkpoint;
  checkpoint.request_id = 33;
  checkpoint.marker = 4;
  add("checkpoint_request", wire::EnvelopeType::kCheckpointRequest,
      wire::EncodeCheckpointRequestEnvelope(checkpoint));

  wire::BlockDoneEnvelope done;
  done.request_id = 34;
  done.scalars = {{TaskId(5), 2.0}};
  add("block_done", wire::EnvelopeType::kBlockDone, wire::EncodeBlockDoneEnvelope(done));

  add("checkpoint_done", wire::EnvelopeType::kCheckpointDone,
      wire::EncodeCheckpointDoneEnvelope(35));
  add("recovery_notice", wire::EnvelopeType::kRecoveryNotice,
      wire::EncodeRecoveryNoticeEnvelope(36));

  wire::HeartbeatAckEnvelope ack;
  ack.worker = WorkerId(3);
  ack.seq = 77;
  add("heartbeat_ack", wire::EnvelopeType::kHeartbeatAck,
      wire::EncodeHeartbeatAckEnvelope(ack));

  wire::SuspectNoticeEnvelope suspect;
  suspect.worker = WorkerId(3);
  suspect.missed_beats = 2;
  add("suspect_notice", wire::EnvelopeType::kSuspectNotice,
      wire::EncodeSuspectNoticeEnvelope(suspect));

  return corpus;
}

// Runs the decoder matching `type` on `bytes`, discarding the result. Mutations that
// corrupt the type byte still route to the original decoder — OpenEnvelope pins the type,
// so a mismatch is itself a rejection the decoder must make cleanly.
void DecodeAs(wire::EnvelopeType type, const ParameterBlob& bytes) {
  switch (type) {
    case wire::EnvelopeType::kCommands:
      wire::DecodeCommandsEnvelope(bytes);
      return;
    case wire::EnvelopeType::kSerializedBatch:
      wire::DecodeSerializedBatchEnvelope(bytes);
      return;
    case wire::EnvelopeType::kInstallTemplate:
      wire::DecodeInstallTemplateEnvelope(bytes);
      return;
    case wire::EnvelopeType::kInstantiate:
      wire::DecodeInstantiateEnvelope(bytes);
      return;
    case wire::EnvelopeType::kHalt:
      wire::DecodeHaltEnvelope(bytes);
      return;
    case wire::EnvelopeType::kLoadObjects:
      wire::DecodeLoadObjectsEnvelope(bytes);
      return;
    case wire::EnvelopeType::kHeartbeat:
      wire::DecodeHeartbeatEnvelope(bytes);
      return;
    case wire::EnvelopeType::kGroupComplete:
      wire::DecodeGroupCompleteEnvelope(bytes);
      return;
    case wire::EnvelopeType::kDataCopy:
      wire::DecodeDataCopyEnvelope(bytes);
      return;
    case wire::EnvelopeType::kSubmitStages:
      wire::DecodeSubmitStagesEnvelope(bytes);
      return;
    case wire::EnvelopeType::kInstantiateRequest:
      wire::DecodeInstantiateRequestEnvelope(bytes);
      return;
    case wire::EnvelopeType::kCheckpointRequest:
      wire::DecodeCheckpointRequestEnvelope(bytes);
      return;
    case wire::EnvelopeType::kBlockDone:
      wire::DecodeBlockDoneEnvelope(bytes);
      return;
    case wire::EnvelopeType::kCheckpointDone:
      wire::DecodeCheckpointDoneEnvelope(bytes);
      return;
    case wire::EnvelopeType::kRecoveryNotice:
      wire::DecodeRecoveryNoticeEnvelope(bytes);
      return;
    case wire::EnvelopeType::kHeartbeatAck:
      wire::DecodeHeartbeatAckEnvelope(bytes);
      return;
    case wire::EnvelopeType::kSuspectNotice:
      wire::DecodeSuspectNoticeEnvelope(bytes);
      return;
  }
  FAIL() << "unhandled envelope type " << static_cast<int>(type);
}

// True if the decoder accepted the buffer; false if it rejected via a thrown CHECK.
// Anything else (crash, over-read) is what the sanitizer legs exist to catch.
bool DecodesCleanly(wire::EnvelopeType type, const ParameterBlob& bytes) {
  try {
    DecodeAs(type, bytes);
    return true;
  } catch (const CheckFailure&) {
    return false;
  }
}

TEST(WireFuzzTest, CorpusCoversEveryEnvelopeTypeAndDecodesClean) {
  ScopedCheckThrow guard;
  const auto corpus = BuildCorpus();
  ASSERT_EQ(corpus.size(), static_cast<std::size_t>(wire::kEnvelopeTypeCount));
  std::vector<bool> seen(wire::kEnvelopeTypeCount, false);
  for (const CorpusEntry& entry : corpus) {
    SCOPED_TRACE(entry.name);
    seen[static_cast<std::size_t>(entry.type)] = true;
    EXPECT_EQ(wire::PeekEnvelopeType(entry.bytes), entry.type);
    EXPECT_TRUE(DecodesCleanly(entry.type, entry.bytes));
  }
  for (std::size_t t = 0; t < seen.size(); ++t) {
    EXPECT_TRUE(seen[t]) << "no corpus entry for envelope type " << t;
  }
}

TEST(WireFuzzTest, EveryTruncationOfEveryEnvelopeIsRejected) {
  ScopedCheckThrow guard;
  for (const CorpusEntry& entry : BuildCorpus()) {
    SCOPED_TRACE(entry.name);
    // Every strict prefix must fail: the decoders read length prefixes before content and
    // finish with an at-end check, so no shorter buffer can parse as complete.
    for (std::size_t cut = 0; cut < entry.bytes.size(); ++cut) {
      ParameterBlob truncated(entry.bytes.begin(),
                              entry.bytes.begin() + static_cast<std::ptrdiff_t>(cut));
      EXPECT_FALSE(DecodesCleanly(entry.type, truncated)) << "cut at " << cut;
    }
    // One extra byte is a trailing-bytes rejection.
    ParameterBlob padded = entry.bytes;
    padded.push_back(0);
    EXPECT_FALSE(DecodesCleanly(entry.type, padded));
  }
}

TEST(WireFuzzTest, BitFlipsAtEveryByteNeverCrashTheDecoder) {
  ScopedCheckThrow guard;
  for (const CorpusEntry& entry : BuildCorpus()) {
    SCOPED_TRACE(entry.name);
    for (std::size_t i = 0; i < entry.bytes.size(); ++i) {
      for (std::uint8_t mask : {std::uint8_t{0x01}, std::uint8_t{0x80}, std::uint8_t{0xFF}}) {
        ParameterBlob mutated = entry.bytes;
        mutated[i] = static_cast<std::uint8_t>(mutated[i] ^ mask);
        // A flip inside a value field may still decode (to a different value); a flip in a
        // magic, type, flag, or length byte must reject. Either way: no crash, no
        // over-read — the decode must return or throw.
        DecodesCleanly(entry.type, mutated);
      }
    }
  }
}

TEST(WireFuzzTest, LyingLengthPrefixesAreRejectedBeforeAllocating) {
  ScopedCheckThrow guard;
  for (const CorpusEntry& entry : BuildCorpus()) {
    SCOPED_TRACE(entry.name);
    if (entry.bytes.size() < wire::kEnvelopeHeaderSize + 4) {
      continue;  // no body word to lie in
    }
    // Saturate every aligned-ish 4-byte window past the header. Windows that land on a
    // count or length prefix now claim ~4 billion elements; the decoder must reject
    // against the remaining buffer before allocating. Windows on value fields just decode
    // to garbage values — fine, as long as nothing crashes.
    for (std::size_t off = wire::kEnvelopeHeaderSize; off + 4 <= entry.bytes.size(); ++off) {
      ParameterBlob mutated = entry.bytes;
      for (std::size_t b = 0; b < 4; ++b) {
        mutated[off + b] = 0xFF;
      }
      DecodesCleanly(entry.type, mutated);
    }
  }
}

TEST(WireFuzzTest, DecodingAsEveryWrongTypeIsRejected) {
  ScopedCheckThrow guard;
  const auto corpus = BuildCorpus();
  for (const CorpusEntry& entry : corpus) {
    SCOPED_TRACE(entry.name);
    for (const CorpusEntry& other : corpus) {
      if (other.type == entry.type) {
        continue;
      }
      // The envelope header pins the type; every cross-type decode must reject.
      EXPECT_FALSE(DecodesCleanly(other.type, entry.bytes))
          << "decoded " << entry.name << " as " << other.name;
    }
  }
}

// The nested NBW1 batch codec gets the same treatment: it is what the serialized-dispatch
// hot path memcpys around, so its bounds discipline matters as much as the envelopes'.
ParameterBlob EncodeSampleBatch() {
  const std::uint64_t group_seq = 40;
  const CommandId base(5000);
  const TaskId task_base(6000);
  std::vector<Command> commands;
  Command task = MakeTask(5000);
  task.task_id = TaskId(6000);
  commands.push_back(task);
  Command send;
  send.id = CommandId(5001);
  send.type = CommandType::kCopySend;
  send.before = {CommandId(5000)};
  send.copy_id = MakeCopyId(group_seq, 0);
  send.peer = WorkerId(1);
  send.copy_object = LogicalObjectId(4);
  send.copy_version = 3;
  send.copy_bytes = 1024;
  commands.push_back(send);
  return wire::EncodeBatch(group_seq, base, task_base, commands);
}

TEST(WireFuzzTest, BatchTruncationsAndFlipsAreRejectedOrHarmless) {
  ScopedCheckThrow guard;
  const ParameterBlob bytes = EncodeSampleBatch();

  auto decodes = [](const ParameterBlob& blob) {
    try {
      wire::DecodeBatch(blob);
      return true;
    } catch (const CheckFailure&) {
      return false;
    }
  };
  ASSERT_TRUE(decodes(bytes));

  for (std::size_t cut = 0; cut < bytes.size(); ++cut) {
    ParameterBlob truncated(bytes.begin(), bytes.begin() + static_cast<std::ptrdiff_t>(cut));
    EXPECT_FALSE(decodes(truncated)) << "cut at " << cut;
  }
  for (std::size_t i = 0; i < bytes.size(); ++i) {
    ParameterBlob mutated = bytes;
    mutated[i] = static_cast<std::uint8_t>(mutated[i] ^ 0xFF);
    decodes(mutated);  // reject-or-parse; must not crash or over-read
  }
}

}  // namespace
}  // namespace nimbus
