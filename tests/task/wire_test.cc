// Wire codec for command batches (src/task/wire.h, DESIGN.md §10).
//
// The codec's contract is exact round-tripping: decode(encode(commands)) reproduces every
// field of every command, and re-encoding the decoded stream reproduces the bytes. The
// serialized-batch cache additionally relies on the bytes being instantiation-invariant
// (header patches + in-place parameter patches produce the same buffer a fresh encode
// would), which the patching tests pin here at the byte level.

#include <gtest/gtest.h>

#include <cstdint>
#include <random>
#include <utility>
#include <vector>

#include "src/task/command.h"
#include "src/task/wire.h"

namespace nimbus {
namespace {

constexpr std::uint64_t kSeq = 77;
constexpr std::uint64_t kCmdBase = 1'000'000;
constexpr std::uint64_t kTaskBase = 500'000;

ParameterBlob RandomBlob(std::mt19937_64& rng, std::size_t size) {
  ParameterBlob blob(size);
  for (auto& b : blob) {
    b = static_cast<std::uint8_t>(rng());
  }
  return blob;
}

// Random commands satisfying the encoder's preconditions: ids relative to the bases, copy
// ids embedding kSeq, type-foreign fields default. Cycles through every CommandType and
// mixes empty, small, and large parameter blobs.
std::vector<Command> RandomCommands(std::mt19937_64& rng, std::size_t n) {
  std::vector<Command> cmds;
  std::int32_t copy_index = 0;
  for (std::size_t i = 0; i < n; ++i) {
    Command c;
    c.id = CommandId(kCmdBase + i);
    c.type = static_cast<CommandType>(rng() % 7);
    const std::size_t n_before = i == 0 ? 0 : rng() % 4;
    for (std::size_t b = 0; b < n_before; ++b) {
      c.before.emplace_back(kCmdBase + rng() % i);
    }
    const std::size_t n_reads = rng() % 5;
    for (std::size_t r = 0; r < n_reads; ++r) {
      c.read_set.emplace_back(rng() % 10'000);
    }
    const std::size_t n_writes = rng() % 3;
    for (std::size_t w = 0; w < n_writes; ++w) {
      c.write_set.emplace_back(rng() % 10'000);
    }
    switch (rng() % 3) {
      case 0:
        break;  // empty params
      case 1:
        c.params = RandomBlob(rng, 1 + rng() % 32);
        break;
      default:
        c.params = RandomBlob(rng, 1'000 + rng() % 4'000);
        break;
    }
    switch (c.type) {
      case CommandType::kTask:
        c.task_id = TaskId(kTaskBase + i);
        c.function = FunctionId(rng() % 50);
        c.duration = static_cast<sim::Duration>(rng() % 1'000'000);
        c.returns_scalar = rng() % 2 == 0;
        break;
      case CommandType::kCopySend:
      case CommandType::kCopyReceive:
        c.copy_id = MakeCopyId(kSeq, copy_index++);
        c.peer = WorkerId(rng() % 100);
        c.copy_object = LogicalObjectId(rng() % 10'000);
        c.copy_version = rng() % 1'000;
        c.copy_bytes = static_cast<std::int64_t>(rng() % 1'000'000);
        break;
      default:
        c.data_object = LogicalObjectId(rng() % 10'000);
        c.copy_version = rng() % 1'000;
        c.copy_bytes = static_cast<std::int64_t>(rng() % 1'000'000);
        break;
    }
    cmds.push_back(std::move(c));
  }
  return cmds;
}

TEST(WireCodecTest, RandomizedRoundTripIsExactAndReencodesByteIdentical) {
  std::mt19937_64 rng(20260807);
  for (int round = 0; round < 25; ++round) {
    const std::vector<Command> cmds = RandomCommands(rng, 1 + rng() % 60);
    std::uint64_t expected_tasks = 0;
    for (const Command& c : cmds) {
      expected_tasks += c.type == CommandType::kTask ? 1 : 0;
    }

    const ParameterBlob bytes =
        wire::EncodeBatch(kSeq, CommandId(kCmdBase), TaskId(kTaskBase), cmds);
    const wire::DecodedBatch decoded = wire::DecodeBatch(bytes);
    EXPECT_EQ(decoded.header.group_seq, kSeq);
    EXPECT_EQ(decoded.header.command_id_base, kCmdBase);
    EXPECT_EQ(decoded.header.task_id_base, kTaskBase);
    EXPECT_EQ(decoded.header.command_count, cmds.size());
    EXPECT_EQ(decoded.header.task_count, expected_tasks);
    ASSERT_EQ(decoded.commands.size(), cmds.size()) << "round " << round;
    for (std::size_t i = 0; i < cmds.size(); ++i) {
      EXPECT_TRUE(decoded.commands[i] == cmds[i]) << "round " << round << " command " << i;
    }

    // Re-encoding the decoded stream must reproduce the bytes exactly.
    const ParameterBlob reencoded =
        wire::EncodeBatch(kSeq, CommandId(kCmdBase), TaskId(kTaskBase), decoded.commands);
    EXPECT_EQ(bytes, reencoded) << "round " << round;
  }
}

TEST(WireCodecTest, EmptyBatchRoundTrips) {
  const ParameterBlob bytes =
      wire::EncodeBatch(kSeq, CommandId(kCmdBase), TaskId(kTaskBase), {});
  EXPECT_EQ(bytes.size(), wire::kHeaderSize);
  const wire::DecodedBatch decoded = wire::DecodeBatch(bytes);
  EXPECT_EQ(decoded.header.command_count, 0u);
  EXPECT_TRUE(decoded.commands.empty());
}

TEST(WireCodecTest, PatchHeaderRebasesEveryDecodedId) {
  // Encode against zero bases — the template form the serialized-batch cache stores.
  std::vector<Command> cmds(3);
  cmds[0].id = CommandId(0);
  cmds[0].type = CommandType::kDataCreate;
  cmds[0].data_object = LogicalObjectId(42);
  cmds[1].id = CommandId(1);
  cmds[1].type = CommandType::kTask;
  cmds[1].task_id = TaskId(5);
  cmds[1].function = FunctionId(9);
  cmds[1].before = {CommandId(0)};
  cmds[2].id = CommandId(2);
  cmds[2].type = CommandType::kCopySend;
  cmds[2].copy_id = MakeCopyId(0, 0);
  cmds[2].peer = WorkerId(3);
  cmds[2].copy_object = LogicalObjectId(42);
  cmds[2].copy_bytes = 80;

  ParameterBlob bytes = wire::EncodeBatch(0, CommandId(0), TaskId(0), cmds);
  wire::PatchHeader(&bytes, /*group_seq=*/9'001, CommandId(7'000), TaskId(3'000));

  const wire::DecodedBatch decoded = wire::DecodeBatch(bytes);
  ASSERT_EQ(decoded.commands.size(), 3u);
  EXPECT_EQ(decoded.commands[0].id, CommandId(7'000));
  EXPECT_EQ(decoded.commands[1].id, CommandId(7'001));
  EXPECT_EQ(decoded.commands[1].task_id, TaskId(3'005));
  EXPECT_EQ(decoded.commands[1].before, std::vector<CommandId>{CommandId(7'000)});
  EXPECT_EQ(decoded.commands[2].copy_id, MakeCopyId(9'001, 0));
  // Object ids and payload fields are absolute: unchanged by the rebase.
  EXPECT_EQ(decoded.commands[0].data_object, LogicalObjectId(42));
  EXPECT_EQ(decoded.commands[2].copy_bytes, 80);
}

// A template with two parameterized tasks for the patching tests. Task global entries are
// the task-id deltas: 0 and 2 here.
std::vector<Command> PatchFixture() {
  std::vector<Command> cmds(3);
  cmds[0].id = CommandId(0);
  cmds[0].type = CommandType::kTask;
  cmds[0].task_id = TaskId(0);
  cmds[0].function = FunctionId(1);
  cmds[0].params = ParameterBlob{10, 11, 12, 13};
  cmds[1].id = CommandId(1);
  cmds[1].type = CommandType::kDataCreate;
  cmds[1].data_object = LogicalObjectId(5);
  cmds[2].id = CommandId(2);
  cmds[2].type = CommandType::kTask;
  cmds[2].task_id = TaskId(2);
  cmds[2].function = FunctionId(2);
  cmds[2].params = ParameterBlob{20, 21};
  return cmds;
}

TEST(WireCodecTest, SameSizeOverridesPatchInPlace) {
  const std::vector<Command> cmds = PatchFixture();
  std::vector<wire::ParamSlot> slots;
  const ParameterBlob tmpl = wire::EncodeBatch(0, CommandId(0), TaskId(0), cmds, &slots);
  ASSERT_EQ(slots.size(), 2u);
  EXPECT_EQ(slots[0].global_entry, 0);
  EXPECT_EQ(slots[1].global_entry, 2);

  const std::vector<std::pair<std::int32_t, ParameterBlob>> overrides = {
      {0, ParameterBlob{90, 91, 92, 93}},  // same size as the cached 4 bytes
      {1, ParameterBlob{1, 2, 3}},         // foreign entry: no slot here, skipped
  };
  wire::PatchStats stats;
  const ParameterBlob patched = wire::ApplyParamOverrides(tmpl, slots, overrides, &stats);
  EXPECT_EQ(stats.params_patched, 1u);
  EXPECT_FALSE(stats.spliced);
  EXPECT_EQ(patched.size(), tmpl.size());

  const wire::DecodedBatch decoded = wire::DecodeBatch(patched);
  EXPECT_EQ(decoded.commands[0].params, (ParameterBlob{90, 91, 92, 93}));
  EXPECT_EQ(decoded.commands[2].params, (ParameterBlob{20, 21}));  // untouched

  // The patched buffer must be byte-identical to a fresh encode with the override baked in.
  std::vector<Command> baked = cmds;
  baked[0].params = ParameterBlob{90, 91, 92, 93};
  EXPECT_EQ(patched, wire::EncodeBatch(0, CommandId(0), TaskId(0), baked));
}

TEST(WireCodecTest, SizeChangingOverridesSpliceCorrectly) {
  const std::vector<Command> cmds = PatchFixture();
  std::vector<wire::ParamSlot> slots;
  const ParameterBlob tmpl = wire::EncodeBatch(0, CommandId(0), TaskId(0), cmds, &slots);

  const std::vector<std::pair<std::int32_t, ParameterBlob>> overrides = {
      {0, ParameterBlob{1}},                       // shrinks 4 -> 1
      {2, ParameterBlob{50, 51, 52, 53, 54, 55}},  // grows 2 -> 6
  };
  wire::PatchStats stats;
  const ParameterBlob patched = wire::ApplyParamOverrides(tmpl, slots, overrides, &stats);
  EXPECT_EQ(stats.params_patched, 2u);
  EXPECT_TRUE(stats.spliced);

  std::vector<Command> baked = cmds;
  baked[0].params = ParameterBlob{1};
  baked[2].params = ParameterBlob{50, 51, 52, 53, 54, 55};
  EXPECT_EQ(patched, wire::EncodeBatch(0, CommandId(0), TaskId(0), baked));
}

TEST(WireCodecTest, NoMatchingOverridesReturnsTemplateUnchanged) {
  const std::vector<Command> cmds = PatchFixture();
  std::vector<wire::ParamSlot> slots;
  const ParameterBlob tmpl = wire::EncodeBatch(0, CommandId(0), TaskId(0), cmds, &slots);
  wire::PatchStats stats;
  EXPECT_EQ(wire::ApplyParamOverrides(tmpl, slots, {}, &stats), tmpl);
  EXPECT_EQ(wire::ApplyParamOverrides(tmpl, slots, {{7, ParameterBlob{1}}}, &stats), tmpl);
  EXPECT_EQ(stats.params_patched, 0u);
}

TEST(WireCodecDeathTest, MalformedBuffersFailTheDecodeChecks) {
  std::mt19937_64 rng(7);
  const std::vector<Command> cmds = RandomCommands(rng, 8);
  ParameterBlob bytes = wire::EncodeBatch(kSeq, CommandId(kCmdBase), TaskId(kTaskBase), cmds);

  ParameterBlob bad_magic = bytes;
  bad_magic[0] ^= 0xFF;
  EXPECT_DEATH(wire::DecodeBatch(bad_magic), "not a wire-format command batch");

  ParameterBlob truncated(bytes.begin(), bytes.end() - 5);
  EXPECT_DEATH(wire::DecodeBatch(truncated), "Check failed");

  ParameterBlob bad_type = bytes;
  bad_type[wire::kHeaderSize] = 200;  // first record's type byte
  EXPECT_DEATH(wire::DecodeBatch(bad_type), "unknown command type");

  ParameterBlob trailing = bytes;
  trailing.push_back(0);
  EXPECT_DEATH(wire::DecodeBatch(trailing), "Check failed");
}

TEST(WireCodecDeathTest, EncoderRejectsOutOfContractCommands) {
  // A command id below the header base cannot be expressed as a u32 delta.
  Command c;
  c.id = CommandId(10);
  c.type = CommandType::kDataCreate;
  c.data_object = LogicalObjectId(1);
  EXPECT_DEATH(wire::EncodeBatch(0, CommandId(100), TaskId(0), {c}),
               "below its header base");

  // A copy id minted for a different group sequence would decode to the wrong group.
  Command copy;
  copy.id = CommandId(0);
  copy.type = CommandType::kCopyReceive;
  copy.copy_id = MakeCopyId(5, 0);
  copy.peer = WorkerId(1);
  copy.copy_object = LogicalObjectId(1);
  EXPECT_DEATH(wire::EncodeBatch(6, CommandId(0), TaskId(0), {copy}),
               "group sequence");
}

}  // namespace
}  // namespace nimbus
