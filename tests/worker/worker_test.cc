// Unit tests for the worker runtime: local readiness resolution, group barriers, streaming
// command arrival, copy matching with out-of-order data, template caching, scalars.

#include <gtest/gtest.h>

#include <memory>

#include "src/data/durable_store.h"
#include "src/net/sim_transport.h"
#include "src/sim/network.h"
#include "src/sim/simulation.h"
#include "src/task/wire.h"
#include "src/worker/function_registry.h"
#include "src/worker/worker.h"

namespace nimbus {
namespace {

// Workers wired straight to a SimTransport, with the harness itself standing in for the
// controller: its handler decodes the kGroupComplete envelopes workers emit.
struct Harness {
  sim::Simulation simulation;
  sim::CostModel costs;
  sim::Network network{&simulation, &costs};
  net::SimTransport transport{&network};
  FunctionRegistry functions;
  DurableStore durable;
  std::vector<std::unique_ptr<Worker>> workers;
  std::vector<std::pair<WorkerId, std::uint64_t>> completions;
  std::vector<ScalarResult> scalars;

  explicit Harness(int n = 2) {
    transport.RegisterHandler(
        net::NodeAddress::Controller(),
        [this](net::NodeAddress, MessageKind, ParameterBlob bytes) {
          if (wire::PeekEnvelopeType(bytes) != wire::EnvelopeType::kGroupComplete) {
            return;  // heartbeats etc. are not under test here
          }
          wire::GroupCompleteEnvelope e = wire::DecodeGroupCompleteEnvelope(bytes);
          completions.emplace_back(e.worker, e.group_seq);
          for (auto& r : e.scalars) {
            scalars.push_back(r);
          }
        });
    for (int i = 0; i < n; ++i) {
      auto worker = std::make_unique<Worker>(WorkerId(static_cast<std::uint64_t>(i)),
                                             &simulation, &transport, &costs, &functions,
                                             &durable);
      transport.RegisterHandler(
          worker->address(),
          [w = worker.get()](net::NodeAddress src, MessageKind kind, ParameterBlob bytes) {
            w->OnEnvelope(src, kind, std::move(bytes));
          });
      workers.push_back(std::move(worker));
    }
  }

  Worker& w(int i) { return *workers[static_cast<std::size_t>(i)]; }
};

Command TaskCmd(std::uint64_t id, FunctionId fn, std::vector<LogicalObjectId> reads,
                std::vector<LogicalObjectId> writes, std::vector<std::uint64_t> before = {},
                sim::Duration duration = sim::Millis(1)) {
  Command cmd;
  cmd.id = CommandId(id);
  cmd.type = CommandType::kTask;
  cmd.function = fn;
  cmd.task_id = TaskId(id);
  cmd.read_set = std::move(reads);
  cmd.write_set = std::move(writes);
  for (std::uint64_t b : before) {
    cmd.before.push_back(CommandId(b));
  }
  cmd.duration = duration;
  return cmd;
}

TEST(WorkerTest, ExecutesTasksInDependencyOrder) {
  Harness h(1);
  std::vector<int> order;
  const FunctionId f1 = h.functions.Register("one", [&](TaskContext& ctx) {
    order.push_back(1);
    ctx.WriteScalar(0).set_value(10);
  });
  const FunctionId f2 = h.functions.Register("two", [&](TaskContext& ctx) {
    order.push_back(2);
    EXPECT_DOUBLE_EQ(ctx.ReadScalar(0), 10.0);
  });

  // Submit dependent-first to prove readiness is resolved locally, not by arrival order.
  std::vector<Command> cmds;
  cmds.push_back(TaskCmd(2, f2, {LogicalObjectId(1)}, {}, {1}));
  cmds.push_back(TaskCmd(1, f1, {}, {LogicalObjectId(1)}));
  h.w(0).OnCommands(1, std::move(cmds), 2, true, true);
  h.simulation.Run();

  EXPECT_EQ(order, (std::vector<int>{1, 2}));
  ASSERT_EQ(h.completions.size(), 1u);
  EXPECT_EQ(h.completions[0].second, 1u);
}

TEST(WorkerTest, StreamingArrivalResolvesForwardEdges) {
  Harness h(1);
  std::vector<int> order;
  const FunctionId f1 = h.functions.Register("one", [&](TaskContext& ctx) {
    order.push_back(1);
    ctx.WriteScalar(0).set_value(1);
  });
  const FunctionId f2 = h.functions.Register("two", [&](TaskContext&) { order.push_back(2); });

  // The dependent command arrives in a separate (earlier) message than its dependency.
  std::vector<Command> first;
  first.push_back(TaskCmd(2, f2, {LogicalObjectId(1)}, {}, {1}));
  h.w(0).OnCommands(1, std::move(first), 0, false, true);
  h.simulation.Run();
  EXPECT_TRUE(order.empty());

  std::vector<Command> second;
  second.push_back(TaskCmd(1, f1, {}, {LogicalObjectId(1)}));
  h.w(0).OnCommands(1, std::move(second), 2, true, true);
  h.simulation.Run();
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

TEST(WorkerTest, BarrierGroupsRunInArrivalOrder) {
  Harness h(1);
  std::vector<int> order;
  const FunctionId fa = h.functions.Register("a", [&](TaskContext&) { order.push_back(1); });
  const FunctionId fb = h.functions.Register("b", [&](TaskContext&) { order.push_back(2); });

  std::vector<Command> g1;
  g1.push_back(TaskCmd(1, fa, {}, {}, {}, sim::Millis(50)));
  h.w(0).OnCommands(1, std::move(g1), 1, true, true);
  std::vector<Command> g2;
  g2.push_back(TaskCmd(2, fb, {}, {}, {}, sim::Millis(1)));
  h.w(0).OnCommands(2, std::move(g2), 1, true, true);
  h.simulation.Run();

  // Group 2 is a barrier: even though its task is shorter, it waits for group 1.
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
  EXPECT_EQ(h.completions.size(), 2u);
}

TEST(WorkerTest, NonBarrierGroupsOverlap) {
  Harness h(1);
  std::vector<std::pair<int, sim::TimePoint>> events;
  const FunctionId fa = h.functions.Register("a", [&](TaskContext&) {});
  const FunctionId fb = h.functions.Register("b", [&](TaskContext&) {});

  std::vector<Command> g1;
  g1.push_back(TaskCmd(1, fa, {}, {}, {}, sim::Millis(50)));
  h.w(0).OnCommands(1, std::move(g1), 1, true, /*barrier=*/false);
  std::vector<Command> g2;
  g2.push_back(TaskCmd(2, fb, {}, {}, {}, sim::Millis(1)));
  h.w(0).OnCommands(2, std::move(g2), 1, true, /*barrier=*/false);
  h.simulation.Run();

  // Spark-style independent dispatch: the short task finishes first.
  ASSERT_EQ(h.completions.size(), 2u);
  EXPECT_EQ(h.completions[0].second, 2u);
}

TEST(WorkerTest, CopyPairMovesDataBetweenWorkers) {
  Harness h(2);
  const FunctionId fw = h.functions.Register("writer", [&](TaskContext& ctx) {
    ctx.WriteVector(0).values() = {4.5, 6.5};
  });
  double read_back = 0;
  const FunctionId fr = h.functions.Register("reader", [&](TaskContext& ctx) {
    read_back = ctx.ReadVector(0).values()[1];
  });

  // Worker 0: write + send. Worker 1: receive + read. Copy ids encode (group seq, index).
  const CopyId copy = MakeCopyId(1, 0);
  std::vector<Command> g0;
  g0.push_back(TaskCmd(1, fw, {}, {LogicalObjectId(5)}));
  Command send;
  send.id = CommandId(2);
  send.type = CommandType::kCopySend;
  send.copy_id = copy;
  send.peer = WorkerId(1);
  send.copy_object = LogicalObjectId(5);
  send.copy_bytes = 16;
  send.before = {CommandId(1)};
  g0.push_back(std::move(send));
  h.w(0).OnCommands(1, std::move(g0), 2, true, true);

  std::vector<Command> g1;
  Command recv;
  recv.id = CommandId(3);
  recv.type = CommandType::kCopyReceive;
  recv.copy_id = copy;
  recv.peer = WorkerId(0);
  recv.copy_object = LogicalObjectId(5);
  g1.push_back(std::move(recv));
  g1.push_back(TaskCmd(4, fr, {LogicalObjectId(5)}, {}, {3}));
  h.w(1).OnCommands(1, std::move(g1), 2, true, true);

  h.simulation.Run();
  EXPECT_DOUBLE_EQ(read_back, 6.5);
  EXPECT_EQ(h.completions.size(), 2u);
}

TEST(WorkerTest, DataArrivingBeforeReceiveCommandIsBuffered) {
  Harness h(2);
  double read_back = 0;
  const FunctionId fr = h.functions.Register("reader", [&](TaskContext& ctx) {
    read_back = ctx.ReadScalar(0);
  });

  // Push the data message directly, before the receive's group even exists.
  const CopyId copy = MakeCopyId(1, 0);
  h.w(1).OnDataMessage(copy, LogicalObjectId(3), 1, std::make_unique<ScalarPayload>(42.0));
  EXPECT_EQ(h.w(1).buffered_copy_count(), 1u);

  std::vector<Command> g;
  Command recv;
  recv.id = CommandId(1);
  recv.type = CommandType::kCopyReceive;
  recv.copy_id = copy;
  recv.peer = WorkerId(0);
  recv.copy_object = LogicalObjectId(3);
  g.push_back(std::move(recv));
  g.push_back(TaskCmd(2, fr, {LogicalObjectId(3)}, {}, {1}));
  h.w(1).OnCommands(1, std::move(g), 2, true, true);
  h.simulation.Run();
  EXPECT_DOUBLE_EQ(read_back, 42.0);
  EXPECT_EQ(h.w(1).buffered_copy_count(), 0u);
}

TEST(WorkerTest, HaltMidGroupDropsBufferedCopyData) {
  Harness h(2);
  const FunctionId slow = h.functions.Register("slow", [](TaskContext&) {});
  // Group 1 keeps the worker busy so the barrier group 2 cannot start.
  std::vector<Command> g1;
  g1.push_back(TaskCmd(1, slow, {}, {}, {}, sim::Millis(50)));
  h.w(1).OnCommands(1, std::move(g1), 1, true, true);

  // Group 2: a receive whose payload arrives while the group is still blocked.
  const CopyId copy = MakeCopyId(2, 0);
  std::vector<Command> g2;
  Command recv;
  recv.id = CommandId(10);
  recv.type = CommandType::kCopyReceive;
  recv.copy_id = copy;
  recv.peer = WorkerId(0);
  recv.copy_object = LogicalObjectId(3);
  g2.push_back(std::move(recv));
  h.w(1).OnCommands(2, std::move(g2), 1, true, true);
  h.w(1).OnDataMessage(copy, LogicalObjectId(3), 1, std::make_unique<ScalarPayload>(1.5));
  EXPECT_EQ(h.w(1).buffered_copy_count(), 1u);

  // Controller-style halt mid-group: buffered payloads die with their groups instead of
  // dangling in the receive index.
  h.w(1).OnHalt();
  EXPECT_EQ(h.w(1).buffered_copy_count(), 0u);
  EXPECT_TRUE(h.w(1).idle());

  // A duplicate of the in-flight payload arriving after the halt is stale and dropped.
  h.w(1).OnDataMessage(copy, LogicalObjectId(3), 1, std::make_unique<ScalarPayload>(1.5));
  EXPECT_EQ(h.w(1).buffered_copy_count(), 0u);
  h.simulation.Run();
  EXPECT_FALSE(h.w(1).store().Has(LogicalObjectId(3)));
  EXPECT_TRUE(h.completions.empty());
}

TEST(WorkerTest, FailedWorkerMidGroupIgnoresInFlightData) {
  Harness h(2);
  const CopyId copy = MakeCopyId(1, 0);
  std::vector<Command> g;
  Command recv;
  recv.id = CommandId(1);
  recv.type = CommandType::kCopyReceive;
  recv.copy_id = copy;
  recv.peer = WorkerId(0);
  recv.copy_object = LogicalObjectId(3);
  g.push_back(std::move(recv));
  h.w(1).OnCommands(1, std::move(g), 1, true, true);

  // The worker dies while the copy's payload is still in flight; the late delivery must
  // not buffer anything on the corpse.
  h.w(1).Fail();
  h.w(1).OnDataMessage(copy, LogicalObjectId(3), 1, std::make_unique<ScalarPayload>(2.5));
  EXPECT_EQ(h.w(1).buffered_copy_count(), 0u);
  h.simulation.Run();
  EXPECT_TRUE(h.completions.empty());
  EXPECT_FALSE(h.w(1).store().Has(LogicalObjectId(3)));
}

TEST(WorkerTest, StaleDataForFinishedGroupIsDropped) {
  Harness h(1);
  const FunctionId f = h.functions.Register("fn", [](TaskContext&) {});
  std::vector<Command> g;
  g.push_back(TaskCmd(1, f, {}, {}));
  h.w(0).OnCommands(1, std::move(g), 1, true, true);
  h.simulation.Run();
  ASSERT_EQ(h.completions.size(), 1u);  // group 1 finished and was pruned

  // A late/duplicate payload addressed at the finished group must not dangle forever in
  // the buffers (the group it names can never claim it).
  h.w(0).OnDataMessage(MakeCopyId(1, 0), LogicalObjectId(7), 1,
                       std::make_unique<ScalarPayload>(3.0));
  EXPECT_EQ(h.w(0).buffered_copy_count(), 0u);
}

TEST(WorkerTest, ScalarsReportedWithCompletion) {
  Harness h(1);
  const FunctionId f = h.functions.Register("scalar", [&](TaskContext& ctx) {
    ctx.ReturnScalar(3.25);
  });
  Command cmd = TaskCmd(1, f, {}, {});
  cmd.returns_scalar = true;
  std::vector<Command> g;
  g.push_back(std::move(cmd));
  h.w(0).OnCommands(1, std::move(g), 1, true, true);
  h.simulation.Run();
  ASSERT_EQ(h.scalars.size(), 1u);
  EXPECT_EQ(h.scalars[0].task, TaskId(1));
  EXPECT_DOUBLE_EQ(h.scalars[0].value, 3.25);
}

TEST(WorkerTest, TemplateInstallAndInstantiate) {
  Harness h(1);
  int runs = 0;
  const FunctionId f = h.functions.Register("fn", [&](TaskContext& ctx) {
    ++runs;
    ctx.WriteScalar(0).set_value(runs);
  });

  core::WorkerHalf half;
  half.worker = WorkerId(0);
  core::WtEntry entry;
  entry.type = CommandType::kTask;
  entry.function = f;
  entry.global_entry = 0;
  entry.writes = {LogicalObjectId(1)};
  entry.duration = sim::Millis(1);
  half.entries.push_back(entry);

  h.w(0).OnInstallTemplate(half, WorkerTemplateId(1));
  EXPECT_TRUE(h.w(0).HasTemplate(WorkerTemplateId(1)));
  EXPECT_EQ(h.w(0).cached_template_count(), 1u);

  for (std::uint64_t seq = 1; seq <= 3; ++seq) {
    InstantiateMsg msg;
    msg.worker_template = WorkerTemplateId(1);
    msg.group_seq = seq;
    msg.command_base = CommandId(seq * 100);
    msg.task_base = TaskId(seq * 100);
    h.w(0).OnInstantiate(std::move(msg));
  }
  h.simulation.Run();
  EXPECT_EQ(runs, 3);
  EXPECT_EQ(h.completions.size(), 3u);
}

TEST(WorkerTest, FailedWorkerIgnoresAllInput) {
  Harness h(1);
  int runs = 0;
  const FunctionId f = h.functions.Register("fn", [&](TaskContext&) { ++runs; });
  h.w(0).Fail();
  std::vector<Command> g;
  g.push_back(TaskCmd(1, f, {}, {}));
  h.w(0).OnCommands(1, std::move(g), 1, true, true);
  h.simulation.Run();
  EXPECT_EQ(runs, 0);
  EXPECT_TRUE(h.completions.empty());
}

TEST(WorkerTest, HaltFlushesQueues) {
  Harness h(1);
  int runs = 0;
  const FunctionId f = h.functions.Register("fn", [&](TaskContext&) { ++runs; });
  std::vector<Command> g;
  g.push_back(TaskCmd(1, f, {}, {}, {}, sim::Millis(10)));
  g.push_back(TaskCmd(2, f, {}, {}, {1}, sim::Millis(10)));
  h.w(0).OnCommands(1, std::move(g), 2, true, true);
  h.w(0).OnHalt();
  h.simulation.Run();
  // Whatever was in flight on a core may or may not land, but the dependent task and the
  // completion message must not.
  EXPECT_LE(runs, 1);
  EXPECT_TRUE(h.completions.empty());
  EXPECT_TRUE(h.w(0).idle());
}

TEST(WorkerTest, FileSaveAndLoadRoundTripThroughDurableStore) {
  Harness h(1);
  h.w(0).store().Put(LogicalObjectId(4), 2, std::make_unique<ScalarPayload>(7.5));

  Command save;
  save.id = CommandId(1);
  save.type = CommandType::kFileSave;
  save.data_object = LogicalObjectId(4);
  save.copy_version = 2;
  save.copy_bytes = 8;
  std::vector<Command> g;
  g.push_back(std::move(save));
  h.w(0).OnCommands(1, std::move(g), 1, true, true);
  h.simulation.Run();
  ASSERT_TRUE(h.durable.Has(LogicalObjectId(4)));

  // Clear the store and reload.
  h.w(0).store().Clear();
  h.w(0).OnLoadObjects(2, {LogicalObjectId(4)});
  h.simulation.Run();
  ASSERT_TRUE(h.w(0).store().Has(LogicalObjectId(4)));
  EXPECT_DOUBLE_EQ(
      dynamic_cast<const ScalarPayload*>(h.w(0).store().Get(LogicalObjectId(4)))->value(),
      7.5);
}

}  // namespace
}  // namespace nimbus
